/**
 * @file
 * Tests for the ledger-driven, cache-backed design-space explorer:
 * CoOptSpace validation, empty-feasible-set behavior, the CostFn
 * lattice, Pareto-front extraction, the programmed-model cache
 * (hit/miss accounting, read-only concurrent sharing, cached ==
 * uncached bit-identity), and the headline differential property —
 * the ledger-backed cost function ranks a partial-tail-column-group
 * workload differently from the analytic one, with the measured SC
 * term matching the PR-5 reconciliation formula
 * measured = analytic * fanOut / (colTiles * Cs) to 1e-12.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>

#include "core/cooptimizer.h"
#include "core/explorer.h"
#include "energy_ledger_util.h"

using namespace superbnn;
using namespace superbnn::core;

namespace {

aqfp::AttenuationModel
atten()
{
    return aqfp::AttenuationModel();
}

/** Single fc layer whose fanOut=9 leaves a partial tail group at Cs=4. */
aqfp::WorkloadSpec
tailWorkload()
{
    aqfp::WorkloadSpec w;
    w.name = "tail";
    w.layers = {aqfp::LayerSpec::fc("fc", 4, 9)};
    return w;
}

/** The space exhibiting the analytic-vs-measured ranking flip. */
CoOptSpace
tailSpace()
{
    CoOptSpace space;
    space.crossbarSizes = {4, 9};
    space.grayZones = {2.4};
    space.bitstreamLengths = {16};
    return space;
}

/** %.17g JSON round-trips doubles exactly: equal text == equal bits. */
void
expectBitIdentical(const std::vector<CoOptCandidate> &a,
                   const std::vector<CoOptCandidate> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("candidate " + std::to_string(i));
        EXPECT_EQ(a[i].config.crossbarSize, b[i].config.crossbarSize);
        EXPECT_EQ(a[i].config.bitstreamLength,
                  b[i].config.bitstreamLength);
        EXPECT_EQ(a[i].config.deltaIinUa, b[i].config.deltaIinUa);
        EXPECT_EQ(aqfp::toJson(a[i].energy), aqfp::toJson(b[i].energy));
        EXPECT_EQ(a[i].ame, b[i].ame);
        ASSERT_EQ(a[i].measured.has_value(), b[i].measured.has_value());
        if (a[i].measured)
            EXPECT_EQ(aqfp::toJson(*a[i].measured),
                      aqfp::toJson(*b[i].measured));
    }
}

} // namespace

// --- CoOptSpace validation -------------------------------------------------

TEST(CoOptSpaceValidate, DefaultSpaceIsValid)
{
    EXPECT_NO_THROW(CoOptSpace{}.validate());
}

TEST(CoOptSpaceValidate, EmptyAxesThrow)
{
    CoOptSpace space;
    space.crossbarSizes.clear();
    EXPECT_THROW(space.validate(), std::invalid_argument);

    space = CoOptSpace{};
    space.grayZones.clear();
    EXPECT_THROW(space.validate(), std::invalid_argument);

    space = CoOptSpace{};
    space.bitstreamLengths.clear();
    EXPECT_THROW(space.validate(), std::invalid_argument);
}

TEST(CoOptSpaceValidate, ZeroSizesThrow)
{
    CoOptSpace space;
    space.crossbarSizes = {8, 0};
    EXPECT_THROW(space.validate(), std::invalid_argument);

    space = CoOptSpace{};
    space.bitstreamLengths = {0};
    EXPECT_THROW(space.validate(), std::invalid_argument);
}

TEST(CoOptSpaceValidate, DuplicateValuesThrow)
{
    CoOptSpace space;
    space.crossbarSizes = {8, 16, 8};
    EXPECT_THROW(space.validate(), std::invalid_argument);

    space = CoOptSpace{};
    space.grayZones = {2.4, 2.4};
    EXPECT_THROW(space.validate(), std::invalid_argument);

    space = CoOptSpace{};
    space.bitstreamLengths = {4, 4};
    EXPECT_THROW(space.validate(), std::invalid_argument);
}

TEST(CoOptSpaceValidate, BadScalarsThrow)
{
    CoOptSpace space;
    space.frequencyGhz = 0.0;
    EXPECT_THROW(space.validate(), std::invalid_argument);

    space = CoOptSpace{};
    space.frequencyGhz = -1.0;
    EXPECT_THROW(space.validate(), std::invalid_argument);

    space = CoOptSpace{};
    space.grayZones = {0.0};
    EXPECT_THROW(space.validate(), std::invalid_argument);

    space = CoOptSpace{};
    space.grayZones = {-2.4};
    EXPECT_THROW(space.validate(), std::invalid_argument);

    space = CoOptSpace{};
    space.minTopsPerWatt = -1.0;
    EXPECT_THROW(space.validate(), std::invalid_argument);
}

TEST(CoOptSpaceValidate, EnumerateValidatesTheSpace)
{
    const CoOptimizer opt(atten());
    CoOptSpace space;
    space.crossbarSizes.clear();
    EXPECT_THROW(opt.enumerate(aqfp::workloads::mnistMlp(), space),
                 std::invalid_argument);
}

// --- empty feasible set ----------------------------------------------------

TEST(EmptyFeasibleSet, EnumerateReturnsEmptyWithoutThrowing)
{
    const CoOptimizer opt(atten());
    CoOptSpace space = tailSpace();
    space.minTopsPerWatt = 1e30; // excludes everything
    EXPECT_TRUE(opt.enumerate(tailWorkload(), space).empty());
}

TEST(EmptyFeasibleSet, BestByAmeThrowsDocumentedException)
{
    const CoOptimizer opt(atten());
    CoOptSpace space = tailSpace();
    space.minTopsPerWatt = 1e30;
    EXPECT_THROW(opt.bestByAme(tailWorkload(), space),
                 NoFeasibleCandidateError);
    // ...which is a runtime_error, so legacy catch sites still work.
    EXPECT_THROW(opt.bestByAme(tailWorkload(), space),
                 std::runtime_error);
    EXPECT_FALSE(opt.tryBestByAme(tailWorkload(), space).has_value());
}

TEST(EmptyFeasibleSet, OptimizeThrowsAndNeverInvokesCallback)
{
    const CoOptimizer opt(atten());
    CoOptSpace space = tailSpace();
    space.maxTotalJj = 1; // nothing fits one junction
    int calls = 0;
    const AccuracyFn count_calls =
        [&](const aqfp::AcceleratorConfig &) {
            ++calls;
            return 1.0;
        };
    EXPECT_THROW(opt.optimize(tailWorkload(), space, count_calls),
                 NoFeasibleCandidateError);
    EXPECT_FALSE(
        opt.tryOptimize(tailWorkload(), space, count_calls).has_value());
    EXPECT_EQ(calls, 0);
}

TEST(EmptyFeasibleSet, ExplorerBestThrows)
{
    EXPECT_THROW(
        DesignSpaceExplorer::best({}, costs::analyticEnergy()),
        NoFeasibleCandidateError);
}

// --- cost-function lattice -------------------------------------------------

TEST(CostFns, MeasuredEnergyRequiresMeasurement)
{
    CoOptCandidate cand;
    EXPECT_THROW(costs::measuredEnergy()(cand), std::logic_error);
    cand.measured = aqfp::EnergyReport{};
    cand.measured->totalEnergyAj = 42.0;
    EXPECT_DOUBLE_EQ(costs::measuredEnergy()(cand), 42.0);
}

TEST(CostFns, AccuracyLossRequiresCallbackResult)
{
    CoOptCandidate cand;
    EXPECT_THROW(costs::accuracyLoss()(cand), std::logic_error);
    cand.accuracy = 0.75;
    EXPECT_DOUBLE_EQ(costs::accuracyLoss()(cand), 0.25);
}

TEST(CostFns, WeightedCombinesTerms)
{
    CoOptCandidate cand;
    cand.energy.totalEnergyAj = 10.0;
    cand.ame = 3.0;
    const CostFn combo = costs::weighted(
        {{costs::analyticEnergy(), 0.5}, {costs::ame(), 2.0}});
    EXPECT_DOUBLE_EQ(combo(cand), 0.5 * 10.0 + 2.0 * 3.0);
    EXPECT_THROW(costs::weighted({}), std::invalid_argument);
}

TEST(CostFns, RankedFillsCostAndSortsStably)
{
    std::vector<CoOptCandidate> cands(3);
    cands[0].energy.totalEnergyAj = 5.0;
    cands[0].config.crossbarSize = 1;
    cands[1].energy.totalEnergyAj = 2.0;
    cands[1].config.crossbarSize = 2;
    cands[2].energy.totalEnergyAj = 5.0;
    cands[2].config.crossbarSize = 3;
    const auto ranked =
        DesignSpaceExplorer::ranked(cands, costs::analyticEnergy());
    ASSERT_EQ(ranked.size(), 3u);
    EXPECT_EQ(ranked[0].config.crossbarSize, 2u);
    // Equal costs keep their input (grid) order: 1 before 3.
    EXPECT_EQ(ranked[1].config.crossbarSize, 1u);
    EXPECT_EQ(ranked[2].config.crossbarSize, 3u);
    EXPECT_DOUBLE_EQ(ranked[0].cost, 2.0);
    EXPECT_DOUBLE_EQ(ranked[1].cost, 5.0);
}

TEST(CostFns, ParetoFrontDropsDominatedCandidates)
{
    // (energy, ame) points: (1,4) and (2,2) and (4,1) are the front;
    // (3,3) is dominated by (2,2); (2,5) is dominated by (1,4)? no —
    // (1,4): 1<2 but 4<5, dominated. (5,5) dominated by everything.
    std::vector<CoOptCandidate> cands(5);
    const double pts[5][2] = {
        {3.0, 3.0}, {1.0, 4.0}, {4.0, 1.0}, {2.0, 2.0}, {5.0, 5.0}};
    for (int i = 0; i < 5; ++i) {
        cands[i].energy.totalEnergyAj = pts[i][0];
        cands[i].ame = pts[i][1];
    }
    const auto front = DesignSpaceExplorer::paretoFront(
        cands, costs::analyticEnergy(), costs::ame());
    ASSERT_EQ(front.size(), 3u);
    // Sorted by ascending energy.
    EXPECT_DOUBLE_EQ(front[0].energy.totalEnergyAj, 1.0);
    EXPECT_DOUBLE_EQ(front[1].energy.totalEnergyAj, 2.0);
    EXPECT_DOUBLE_EQ(front[2].energy.totalEnergyAj, 4.0);
}

// --- facade / explorer agreement ------------------------------------------

TEST(Explorer, ExploreMatchesFacadeEnumerate)
{
    CoOptSpace space;
    space.crossbarSizes = {8, 16};
    space.grayZones = {1.6, 2.4};
    space.bitstreamLengths = {4};
    const aqfp::WorkloadSpec workload = aqfp::workloads::mnistMlp();

    const CoOptimizer opt(atten());
    const auto facade = opt.enumerate(workload, space);

    const DesignSpaceExplorer explorer(atten());
    const auto explored = explorer.explore(workload, space);
    expectBitIdentical(facade, explored);
    EXPECT_EQ(explored.size(), 4u);
}

TEST(Explorer, GridOrderIsDeterministic)
{
    CoOptSpace space;
    space.crossbarSizes = {8, 16};
    space.grayZones = {1.6, 2.4};
    space.bitstreamLengths = {4, 8};
    const auto grid = DesignSpaceExplorer::gridConfigs(space);
    ASSERT_EQ(grid.size(), 8u);
    // cs outer, then L, then gz.
    EXPECT_EQ(grid[0].crossbarSize, 8u);
    EXPECT_EQ(grid[0].bitstreamLength, 4u);
    EXPECT_DOUBLE_EQ(grid[0].deltaIinUa, 1.6);
    EXPECT_DOUBLE_EQ(grid[1].deltaIinUa, 2.4);
    EXPECT_EQ(grid[2].bitstreamLength, 8u);
    EXPECT_EQ(grid[4].crossbarSize, 16u);
}

// --- the headline differential property ------------------------------------

TEST(Explorer, MeasuredCostRanksPartialTailGroupsDifferently)
{
    const aqfp::WorkloadSpec workload = tailWorkload();
    const CoOptSpace space = tailSpace();
    const DesignSpaceExplorer explorer(atten());

    ExploreOptions options;
    options.measure = true;
    options.threads = 1;
    const auto cands = explorer.explore(workload, space, options);
    ASSERT_EQ(cands.size(), 2u);

    const auto by_analytic =
        DesignSpaceExplorer::ranked(cands, costs::analyticEnergy());
    const auto by_measured =
        DesignSpaceExplorer::ranked(cands, costs::measuredEnergy());

    // The flip: analytically Cs=9 wins (no tail waste in the model's
    // Cs-wide SC charge at Cs=4 makes Cs=4 look worse), but the
    // hardware only merges the 9 real output columns, so measured
    // Cs=4 — with its cheaper crossbar tiles — actually wins.
    EXPECT_EQ(by_analytic.front().config.crossbarSize, 9u);
    EXPECT_EQ(by_measured.front().config.crossbarSize, 4u);

    // The disagreement is *correct*: each candidate's measured report
    // obeys the PR-5 reconciliation contract. Crossbar/memory/latency
    // agree exactly; the SC term is analytic * fanOut/(colTiles*Cs).
    const aqfp::LayerSpec &spec = workload.layers[0];
    for (const CoOptCandidate &cand : cands) {
        SCOPED_TRACE("Cs=" + std::to_string(cand.config.crossbarSize));
        ASSERT_TRUE(cand.measured.has_value());
        const std::size_t cs = cand.config.crossbarSize;
        const std::size_t col_tiles = (spec.fanOut + cs - 1) / cs;
        const double ratio = static_cast<double>(spec.fanOut)
            / static_cast<double>(col_tiles * cs);

        // Per-layer == workload here (single layer); the workload
        // report only adds the shared buffer's JJs, not energy.
        const aqfp::EnergyReport &measured = *cand.measured;
        const aqfp::EnergyReport &analytic = cand.energy;
        EXPECT_DOUBLE_EQ(measured.crossbarEnergyAj,
                         analytic.crossbarEnergyAj);
        EXPECT_DOUBLE_EQ(measured.memoryEnergyAj,
                         analytic.memoryEnergyAj);
        EXPECT_DOUBLE_EQ(measured.cyclesPerImage,
                         analytic.cyclesPerImage);
        EXPECT_DOUBLE_EQ(measured.latencyUs, analytic.latencyUs);
        EXPECT_NEAR(measured.scModuleEnergyAj,
                    analytic.scModuleEnergyAj * ratio,
                    analytic.scModuleEnergyAj * 1e-12);
        if (spec.fanOut % cs == 0)
            EXPECT_DOUBLE_EQ(measured.scModuleEnergyAj,
                             analytic.scModuleEnergyAj);

        // Hand-computed total from the reconciliation formula
        // reproduces the measured total: the ranking flip is fully
        // explained by the tail-group SC correction.
        const double expected_total = analytic.crossbarEnergyAj
            + analytic.memoryEnergyAj
            + analytic.scModuleEnergyAj * ratio;
        EXPECT_NEAR(measured.totalEnergyAj, expected_total,
                    expected_total * 1e-12);
    }

    // And ranking by the hand-computed corrected totals reproduces the
    // measured ranking.
    const CostFn corrected = [&](const CoOptCandidate &c) {
        const std::size_t cs = c.config.crossbarSize;
        const std::size_t col_tiles = (spec.fanOut + cs - 1) / cs;
        const double ratio = static_cast<double>(spec.fanOut)
            / static_cast<double>(col_tiles * cs);
        return c.energy.crossbarEnergyAj + c.energy.memoryEnergyAj
            + c.energy.scModuleEnergyAj * ratio;
    };
    const auto by_corrected =
        DesignSpaceExplorer::ranked(cands, corrected);
    ASSERT_EQ(by_corrected.size(), by_measured.size());
    for (std::size_t i = 0; i < by_measured.size(); ++i)
        EXPECT_EQ(by_corrected[i].config.crossbarSize,
                  by_measured[i].config.crossbarSize);
}

// --- the programmed-model cache --------------------------------------------

TEST(ModelCache, HitMissAccounting)
{
    auto cache =
        std::make_shared<crossbar::ProgrammedModelCache>(atten());
    EXPECT_EQ(cache->size(), 0u);

    const auto a = cache->geometry(24, 10, 8);
    EXPECT_EQ(cache->stats().misses, 1u);
    EXPECT_EQ(cache->stats().hits, 0u);

    const auto b = cache->geometry(24, 10, 8);
    EXPECT_EQ(cache->stats().misses, 1u);
    EXPECT_EQ(cache->stats().hits, 1u);
    EXPECT_EQ(a.get(), b.get()) << "a hit must share the mapped model";

    // A different deltaIin is a different programmed model.
    const auto c = cache->geometry(24, 10, 8, 3.2);
    EXPECT_EQ(cache->stats().misses, 2u);
    EXPECT_NE(a.get(), c.get());
    EXPECT_EQ(cache->size(), 2u);

    cache->clear();
    EXPECT_EQ(cache->size(), 0u);
    EXPECT_EQ(cache->stats().misses, 0u);
    // Holders keep their models after clear().
    EXPECT_EQ(a->fanIn, 24u);
}

TEST(ModelCache, WindowAxisSharesModelsAndGeometrySharesCounts)
{
    // Candidates differing only in L hit the same mapped model; the
    // probe's counts memo is keyed by (geometry, Cs, L).
    const aqfp::MeasuredCostProbe probe(atten());
    const aqfp::AcceleratorConfig l4{8, 4, 5.0, 2.4};
    const aqfp::AcceleratorConfig l8{8, 8, 5.0, 2.4};
    const aqfp::LayerSpec spec = aqfp::LayerSpec::fc("l", 16, 10);

    (void)probe.measureLayer(spec, l4, 10);
    const auto model_after_first = probe.modelCache()->stats();
    EXPECT_EQ(model_after_first.misses, 1u);
    EXPECT_EQ(probe.countsStats().misses, 1u);

    (void)probe.measureLayer(spec, l8, 10);
    // New window: counts re-measured, model reused.
    EXPECT_EQ(probe.modelCache()->stats().misses, 1u);
    EXPECT_EQ(probe.modelCache()->stats().hits, 1u);
    EXPECT_EQ(probe.countsStats().misses, 2u);

    (void)probe.measureLayer(spec, l8, 10);
    // Same (geometry, Cs, L): pure counts hit, no replay at all.
    EXPECT_EQ(probe.modelCache()->stats().hits, 1u);
    EXPECT_EQ(probe.countsStats().hits, 1u);
}

TEST(ModelCache, ProbeCountsMatchDirectReplay)
{
    // The probe's memoized calibration replay is the same measurement
    // the energy benches take (energy_ledger_util::
    // measureSinglePosition over a geometry layer).
    const aqfp::AttenuationModel at = atten();
    const aqfp::MeasuredCostProbe probe(at);
    const crossbar::TileExecutor exec(16, false, 0.25, 1);
    const crossbar::MappedLayer layer =
        energy_ledger_util::geometryLayer(24, 9, 8, at);
    const aqfp::LedgerCounts direct =
        energy_ledger_util::measureSinglePosition(exec, layer);
    EXPECT_EQ(probe.countsFor(24, 9, 8, 16), direct);
}

TEST(ModelCache, ExplorerBitIdenticalAcrossThreadsAndCacheState)
{
    const aqfp::WorkloadSpec workload = aqfp::workloads::mnistMlp();
    CoOptSpace space;
    space.crossbarSizes = {8, 18};
    // Two gray zones: under parallel fan-out either one can race to a
    // counts miss first, so this axis pins the cache COUNTERS (not
    // just the results) as scheduling-independent — the probe must
    // replay against the canonical-deltaIin model either way.
    space.grayZones = {1.6, 2.4};
    space.bitstreamLengths = {2, 4};

    // Cold private cache, sequential.
    ExploreOptions sequential;
    sequential.measure = true;
    sequential.threads = 1;
    const DesignSpaceExplorer cold(atten());
    const auto reference = cold.explore(workload, space, sequential);
    ASSERT_EQ(reference.size(), 8u);
    for (const auto &cand : reference)
        ASSERT_TRUE(cand.measured.has_value());
    const auto ref_model_stats = cold.modelCache()->stats();
    const auto ref_counts_stats = cold.probe().countsStats();

    // Warm cache (second run on the same explorer): every replay is a
    // counts-memo hit, which short-circuits the model cache entirely
    // (its counters stay put); results bit-identical.
    const auto warm = cold.explore(workload, space, sequential);
    expectBitIdentical(reference, warm);
    EXPECT_EQ(cold.modelCache()->stats().hits, ref_model_stats.hits);
    EXPECT_EQ(cold.modelCache()->stats().misses, ref_model_stats.misses);
    EXPECT_GT(cold.probe().countsStats().hits, ref_counts_stats.hits);

    // Parallel fan-out at several thread counts, fresh caches: results
    // AND cache accounting must match the sequential reference.
    for (std::size_t threads : {2ul, 4ul, 8ul}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        ExploreOptions parallel;
        parallel.measure = true;
        parallel.threads = threads;
        const DesignSpaceExplorer fresh(atten());
        expectBitIdentical(reference,
                           fresh.explore(workload, space, parallel));
        EXPECT_EQ(fresh.modelCache()->stats().hits,
                  ref_model_stats.hits);
        EXPECT_EQ(fresh.modelCache()->stats().misses,
                  ref_model_stats.misses);
        EXPECT_EQ(fresh.probe().countsStats().hits,
                  ref_counts_stats.hits);
        EXPECT_EQ(fresh.probe().countsStats().misses,
                  ref_counts_stats.misses);
    }

    // Shared-pool fan-out (threads = 0) over a shared warm cache.
    ExploreOptions pooled;
    pooled.measure = true;
    const DesignSpaceExplorer shared_cache(
        atten(), aqfp::EnergyModel(), AmeOptions{}, cold.modelCache());
    expectBitIdentical(reference,
                       shared_cache.explore(workload, space, pooled));
}

TEST(ModelCache, ConcurrentExplorersShareOneCache)
{
    // Two explorers race explore() over one shared model cache while
    // each fans its own candidates out — the TSan job runs this test:
    // cached MappedLayers are shared read-only across threads, the
    // cache/probe bookkeeping is internally synchronized.
    const aqfp::WorkloadSpec workload = aqfp::workloads::mnistMlp();
    CoOptSpace space;
    space.crossbarSizes = {8, 16};
    space.grayZones = {2.4};
    space.bitstreamLengths = {2, 4};

    auto cache =
        std::make_shared<crossbar::ProgrammedModelCache>(atten());
    const DesignSpaceExplorer a(atten(), aqfp::EnergyModel(),
                                AmeOptions{}, cache);
    const DesignSpaceExplorer b(atten(), aqfp::EnergyModel(),
                                AmeOptions{}, cache);

    ExploreOptions options;
    options.measure = true;
    options.threads = 2;
    std::vector<CoOptCandidate> ra, rb;
    std::thread ta([&] { ra = a.explore(workload, space, options); });
    std::thread tb([&] { rb = b.explore(workload, space, options); });
    ta.join();
    tb.join();
    expectBitIdentical(ra, rb);

    // Both explorers drew from one cache: at most one miss per
    // distinct geometry (3 layers x 2 crossbar sizes), the rest hits.
    const auto stats = cache->stats();
    EXPECT_LE(stats.misses, 6u);
    EXPECT_GT(stats.hits, 0u);
}

// --- zero-image pricing guard ---------------------------------------------

TEST(PriceLedgerGuard, NonPositiveNormalizationThrows)
{
    const aqfp::EnergyModel model;
    aqfp::LedgerPricingContext ctx;
    ctx.opsPerImage = 10;
    ctx.images = 0.0;
    EXPECT_THROW(model.priceLedger(aqfp::LedgerCounts{}, ctx),
                 std::invalid_argument);
    ctx.images = 1.0;
    ctx.countScale = 0.0;
    EXPECT_THROW(model.priceLedger(aqfp::LedgerCounts{}, ctx),
                 std::invalid_argument);
}
