/**
 * @file
 * Tests for the AQFP gray-zone probability model (Eq. 1 / Fig. 4) and the
 * thermal noise model.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "aqfp/grayzone.h"
#include "aqfp/noise.h"

using namespace superbnn;
using namespace superbnn::aqfp;

TEST(GrayZone, HalfProbabilityAtThreshold)
{
    GrayZoneModel m(2.4, 0.0);
    EXPECT_DOUBLE_EQ(m.probOne(0.0), 0.5);
    GrayZoneModel shifted(2.4, 1.5);
    EXPECT_DOUBLE_EQ(shifted.probOne(1.5), 0.5);
}

TEST(GrayZone, SymmetricAroundThreshold)
{
    GrayZoneModel m(2.4, 0.0);
    for (double i : {0.3, 0.7, 1.1, 1.9, 3.0})
        EXPECT_NEAR(m.probOne(i) + m.probOne(-i), 1.0, 1e-12);
}

TEST(GrayZone, MonotoneIncreasing)
{
    GrayZoneModel m(2.4, 0.0);
    double prev = 0.0;
    for (double i = -5.0; i <= 5.0; i += 0.1) {
        const double p = m.probOne(i);
        EXPECT_GE(p, prev);
        prev = p;
    }
}

TEST(GrayZone, SaturatesOutsideGrayZone)
{
    GrayZoneModel m(2.4, 0.0);
    EXPECT_GT(m.probOne(4.0), 0.999);
    EXPECT_LT(m.probOne(-4.0), 0.001);
}

TEST(GrayZone, Figure4BoundaryNearTwoMicroamps)
{
    // The paper reports the randomized-switching boundary around +/-2 uA
    // for the default configuration.
    GrayZoneModel m(2.4, 0.0);
    const double boundary = m.deterministicBoundary(0.01);
    EXPECT_GT(boundary, 1.4);
    EXPECT_LT(boundary, 2.6);
    EXPECT_NEAR(m.probOne(boundary), 0.99, 1e-6);
}

TEST(GrayZone, ThresholdShiftsCurve)
{
    GrayZoneModel base(2.4, 0.0);
    GrayZoneModel shifted(2.4, 2.0);
    EXPECT_NEAR(shifted.probOne(3.0), base.probOne(1.0), 1e-12);
}

TEST(GrayZone, SetIthAndDelta)
{
    GrayZoneModel m(2.4, 0.0);
    m.setIth(5.0);
    EXPECT_DOUBLE_EQ(m.ith(), 5.0);
    m.setDeltaIin(1.2);
    EXPECT_DOUBLE_EQ(m.deltaIin(), 1.2);
    EXPECT_DOUBLE_EQ(m.probOne(5.0), 0.5);
}

TEST(GrayZone, ExpectationGradientMatchesNumeric)
{
    GrayZoneModel m(2.4, 0.5);
    const double eps = 1e-5;
    for (double x : {-2.0, -0.5, 0.5, 1.0, 3.0}) {
        const double e_p = 2.0 * m.probOne(x + eps) - 1.0;
        const double e_m = 2.0 * m.probOne(x - eps) - 1.0;
        const double num = (e_p - e_m) / (2.0 * eps);
        EXPECT_NEAR(m.expectationGrad(x), num, 1e-5);
    }
}

TEST(GrayZone, SamplingMatchesProbability)
{
    GrayZoneModel m(2.4, 0.0);
    Rng rng(99);
    for (double i : {-1.5, -0.5, 0.0, 0.8, 1.6}) {
        const int trials = 20000;
        int ones = 0;
        for (int t = 0; t < trials; ++t)
            ones += m.sampleBit(i, rng);
        const double emp = static_cast<double>(ones) / trials;
        EXPECT_NEAR(emp, m.probOne(i), 0.015) << "at Iin=" << i;
    }
}

TEST(GrayZone, BipolarSampleValues)
{
    GrayZoneModel m(2.4, 0.0);
    Rng rng(7);
    for (int t = 0; t < 100; ++t) {
        const int v = m.sampleBipolar(0.3, rng);
        EXPECT_TRUE(v == 1 || v == -1);
    }
}

class GrayZoneWidthSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(GrayZoneWidthSweep, NarrowerZoneIsSharper)
{
    const double width = GetParam();
    GrayZoneModel m(width, 0.0);
    GrayZoneModel wide(width * 2.0, 0.0);
    // At the same positive input, the narrower zone gives a more
    // deterministic (higher) probability of '1'.
    for (double i : {0.2, 0.5, 1.0})
        EXPECT_GT(m.probOne(i), wide.probOne(i));
    // Boundary grows linearly with the zone width.
    EXPECT_NEAR(wide.deterministicBoundary() / m.deterministicBoundary(),
                2.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Widths, GrayZoneWidthSweep,
                         ::testing::Values(0.8, 1.6, 2.4, 3.2, 4.0));

// --- thermal noise ---

TEST(ThermalNoise, CalibratedAtOperatingPoint)
{
    ThermalNoiseModel noise;
    EXPECT_NEAR(noise.grayZoneWidth(
                    ThermalNoiseModel::kOperatingTemperature),
                2.4, 0.05);
}

TEST(ThermalNoise, SaturatesAtQuantumFloor)
{
    ThermalNoiseModel noise;
    const double at_zero = noise.grayZoneWidth(0.0);
    EXPECT_GT(at_zero, 0.0);
    EXPECT_NEAR(noise.grayZoneWidth(1e-6), at_zero, 1e-9);
}

TEST(ThermalNoise, GrowsWithTemperature)
{
    ThermalNoiseModel noise;
    double prev = noise.grayZoneWidth(0.0);
    for (double t = 1.0; t <= 10.0; t += 1.0) {
        const double w = noise.grayZoneWidth(t);
        EXPECT_GT(w, prev);
        prev = w;
    }
}

TEST(ThermalNoise, LinearInHighTemperatureLimit)
{
    ThermalNoiseModel noise;
    const double w40 = noise.grayZoneWidth(40.0);
    const double w80 = noise.grayZoneWidth(80.0);
    EXPECT_NEAR(w80 / w40, 2.0, 0.01);
}

TEST(ThermalNoise, CrossoverBelowOperatingPoint)
{
    // At 4.2 K the paper treats thermal noise as dominant; the quantum
    // crossover must sit well below the operating temperature.
    ThermalNoiseModel noise;
    EXPECT_LT(noise.quantumCrossoverTemperature(),
              ThermalNoiseModel::kOperatingTemperature / 2.0);
}
