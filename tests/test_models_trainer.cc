/**
 * @file
 * Integration tests: the randomized BNN models train end to end on the
 * synthetic datasets and beat chance clearly; the trainer applies the
 * warmup/cosine/ReCU recipe.
 */

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "data/synthetic_cifar.h"
#include "data/synthetic_mnist.h"

using namespace superbnn;
using namespace superbnn::core;

namespace {

aqfp::AttenuationModel
atten()
{
    return aqfp::AttenuationModel();
}

data::SyntheticMnist
smallMnist()
{
    data::SyntheticMnistOptions opts;
    opts.trainSize = 600;
    opts.testSize = 200;
    return makeSyntheticMnist(opts);
}

} // namespace

TEST(RandomizedMlpTest, StructureExposed)
{
    Rng rng(1);
    const auto model_atten = atten();
    RandomizedMlp mlp(784, {64, 32}, 10, AqfpBehavior{16, 2.4, 0.0},
                      model_atten, rng);
    EXPECT_EQ(mlp.cells().size(), 2u);
    EXPECT_EQ(mlp.cells()[0].linear->inFeatures(), 784u);
    EXPECT_EQ(mlp.cells()[1].linear->outFeatures(), 32u);
    EXPECT_EQ(mlp.head().outFeatures(), 10u);
    EXPECT_EQ(mlp.binaryWeightTensors().size(), 3u);
    // Parameters: per cell (weight, alpha, gamma, beta) + head (w, a).
    EXPECT_EQ(mlp.parameters().size(), 2u * 4u + 2u);
}

TEST(RandomizedMlpTest, ForwardShapesAndStochasticity)
{
    Rng rng(2);
    const auto model_atten = atten();
    RandomizedMlp mlp(784, {32}, 10, AqfpBehavior{16, 2.4, 0.0},
                      model_atten, rng);
    Tensor x = Tensor::randn({4, 784}, rng);
    Tensor y1 = mlp.forward(x, false);
    EXPECT_EQ(y1.dim(0), 4u);
    EXPECT_EQ(y1.dim(1), 10u);
    // Inference is stochastic (device-faithful): two passes differ
    // almost surely.
    Tensor y2 = mlp.forward(x, false);
    EXPECT_FALSE(y1.equals(y2));
}

TEST(RandomizedMlpTest, TrainsAboveChanceOnSyntheticMnist)
{
    Rng rng(3);
    const auto model_atten = atten();
    const auto ds = smallMnist();
    RandomizedMlp mlp(784, {64}, 10, AqfpBehavior{16, 2.4, 0.0},
                      model_atten, rng);
    TrainConfig cfg;
    cfg.epochs = 30;
    cfg.batchSize = 64;
    cfg.lr = 0.05;
    cfg.warmupEpochs = 3;
    const Trainer trainer(cfg);
    const auto result = trainer.train(mlp, ds.train, ds.test, rng);
    EXPECT_EQ(result.testAccuracy.size(), 30u);
    EXPECT_GT(result.finalTestAccuracy, 0.5)
        << "randomized MLP failed to learn";
    // Loss must drop substantially.
    EXPECT_LT(result.trainLoss.back(), result.trainLoss.front() * 0.8);
}

TEST(RandomizedMlpTest, DeterministicAblationAlsoTrains)
{
    Rng rng(4);
    const auto model_atten = atten();
    const auto ds = smallMnist();
    RandomizedMlp mlp(784, {64}, 10, AqfpBehavior{16, 2.4, 0.0},
                      model_atten, rng, BinarizeMode::Deterministic);
    TrainConfig cfg;
    cfg.epochs = 12;
    cfg.warmupEpochs = 2;
    const Trainer trainer(cfg);
    const auto result = trainer.train(mlp, ds.train, ds.test, rng);
    EXPECT_GT(result.finalTestAccuracy, 0.4);
}

TEST(RandomizedMlpTest, ReCUKeepsWeightsInQuantileBand)
{
    Rng rng(5);
    const auto model_atten = atten();
    const auto ds = smallMnist();
    RandomizedMlp mlp(784, {32}, 10, AqfpBehavior{16, 2.4, 0.0},
                      model_atten, rng);
    TrainConfig cfg;
    cfg.epochs = 2;
    cfg.useReCU = true;
    const Trainer trainer(cfg);
    trainer.train(mlp, ds.train, ds.test, rng);
    for (Tensor *w : mlp.binaryWeightTensors()) {
        // After clamping, extremes equal the quantile bounds: the
        // max/min appear multiple times.
        std::size_t at_max = 0, at_min = 0;
        const float mx = w->maxValue(), mn = w->minValue();
        for (std::size_t i = 0; i < w->size(); ++i) {
            at_max += (*w)[i] == mx;
            at_min += (*w)[i] == mn;
        }
        EXPECT_GT(at_max, 1u);
        EXPECT_GT(at_min, 1u);
    }
}

TEST(RandomizedCnnTest, StructureAndForward)
{
    Rng rng(6);
    const auto model_atten = atten();
    RandomizedCnn::Config cfg;
    cfg.channels = {8, 16};
    cfg.poolAfter = {true, true};
    RandomizedCnn cnn(cfg, AqfpBehavior{16, 2.4, 0.0}, model_atten,
                      rng);
    EXPECT_EQ(cnn.cells().size(), 2u);
    EXPECT_EQ(cnn.binaryWeightTensors().size(), 3u);
    Tensor x = Tensor::randn({2, 3, 32, 32}, rng);
    Tensor y = cnn.forward(x, false);
    EXPECT_EQ(y.dim(0), 2u);
    EXPECT_EQ(y.dim(1), 10u);
}

TEST(RandomizedCnnTest, TrainsOnSyntheticCifarSubset)
{
    Rng rng(7);
    const auto model_atten = atten();
    data::SyntheticCifarOptions dopts;
    dopts.trainSize = 300;
    dopts.testSize = 100;
    const auto ds = makeSyntheticCifar(dopts);
    RandomizedCnn::Config ccfg;
    ccfg.channels = {8, 16};
    ccfg.poolAfter = {true, true};
    RandomizedCnn cnn(ccfg, AqfpBehavior{16, 2.4, 0.0}, model_atten,
                      rng);
    TrainConfig cfg;
    cfg.epochs = 8;
    cfg.batchSize = 32;
    cfg.lr = 0.05;
    cfg.warmupEpochs = 1;
    const Trainer trainer(cfg);
    const auto result = trainer.train(cnn, ds.train, ds.test, rng);
    EXPECT_GT(result.finalTestAccuracy, 0.3)
        << "CNN failed to beat chance clearly";
}

TEST(TrainerTest, EvaluateCapsSamples)
{
    Rng rng(8);
    const auto model_atten = atten();
    const auto ds = smallMnist();
    RandomizedMlp mlp(784, {16}, 10, AqfpBehavior{16, 2.4, 0.0},
                      model_atten, rng);
    const double acc = Trainer::evaluate(mlp, ds.test, 50);
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 1.0);
}

TEST(TrainerTest, VerboseOffByDefaultAndConfigStored)
{
    TrainConfig cfg;
    cfg.epochs = 3;
    const Trainer trainer(cfg);
    EXPECT_EQ(trainer.config().epochs, 3u);
    EXPECT_FALSE(trainer.config().verbose);
}
