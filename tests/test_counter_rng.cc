/**
 * @file
 * Tests of the counter-based Bernoulli generator: the SplitMix64
 * counter scheme against an independent bit-level reference on every
 * SIMD arm, threshold edge cases (p just below 1, p at 2^-64 scale,
 * exact 0/1 with tail words), the position-stability and draw-count
 * contracts of sc::detail::bernoulliFill, and end-to-end executor
 * determinism across thread counts and dispatch arms.
 */

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "aqfp/attenuation.h"
#include "crossbar/mapper.h"
#include "crossbar/tile_executor.h"
#include "sc/bitstream.h"
#include "simd/kernels.h"
#include "simd_test_util.h"
#include "tensor/random.h"

namespace {

using namespace superbnn;

/// Word-boundary edge lengths shared with the other differential suites.
const std::size_t kLengths[] = {1, 63, 64, 65, 127, 128, 129, 1000};

using superbnn::test::ArmRestore;

/**
 * Independent reimplementation of the documented counter scheme (see
 * simd::KernelSet::generateThresholdWords): draw k is the SplitMix64
 * finalizer of seed + (k+1) * gamma. Written out here so the tests pin
 * the *specification*, not whatever the kernels happen to compute.
 */
std::uint64_t
referenceDraw(std::uint64_t seed, std::uint64_t k)
{
    std::uint64_t x = seed + (k + 1) * 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::vector<std::uint64_t>
referenceWords(std::size_t length, std::uint64_t seed,
               std::uint64_t counter, std::uint64_t threshold)
{
    std::vector<std::uint64_t> words((length + 63) / 64, 0);
    for (std::size_t i = 0; i < length; ++i)
        if (referenceDraw(seed, counter + i) < threshold)
            words[i / 64] |= std::uint64_t{1} << (i % 64);
    return words;
}

std::uint64_t
thresholdFor(double p)
{
    return static_cast<std::uint64_t>(std::ldexp(p, 64));
}

TEST(CounterKernel, MatchesBitReferenceOnEveryArm)
{
    const std::uint64_t seeds[] = {0, 1, 0x5eedcafeULL,
                                   ~std::uint64_t{0}};
    // The last counter makes (counter + i) wrap past 2^64 mid-stream;
    // unsigned wraparound is part of the scheme.
    const std::uint64_t counters[] = {0, 1, 63, 64, 1000003,
                                      ~std::uint64_t{0} - 100};
    const std::uint64_t thresholds[] = {
        0,
        1,
        std::uint64_t{1} << 32,
        std::uint64_t{1} << 63,
        ~std::uint64_t{0},
    };
    for (const std::size_t length : kLengths) {
        for (const std::uint64_t seed : seeds) {
            for (const std::uint64_t counter : counters) {
                for (const std::uint64_t threshold : thresholds) {
                    const auto want = referenceWords(length, seed,
                                                     counter, threshold);
                    for (const simd::Arm arm : simd::availableArms()) {
                        std::vector<std::uint64_t> got(want.size(),
                                                       ~std::uint64_t{0});
                        simd::kernelsFor(arm)->generateThresholdWords(
                            got.data(), length, seed, counter,
                            threshold);
                        EXPECT_EQ(got, want)
                            << simd::armName(arm) << " length " << length
                            << " seed " << seed << " counter " << counter
                            << " threshold " << threshold;
                    }
                }
            }
        }
    }
}

TEST(CounterFill, ThresholdEdgeJustBelowOne)
{
    // p = nextafter(1, 0) is the largest double below 1: threshold
    // 2^64 - 2^11, so a bit is 0 with probability 2^-53 — over 4096
    // bits the stream is all-ones except with probability ~5e-13, and
    // the exact words must still match the reference bit-for-bit.
    ArmRestore restore;
    const double p = std::nextafter(1.0, 0.0);
    const std::uint64_t threshold = thresholdFor(p);
    EXPECT_EQ(threshold, ~std::uint64_t{0} - 0x7FF);
    const std::size_t length = 4096 + 13; // tail word too
    const auto want = referenceWords(length, 77, 0, threshold);
    for (const simd::Arm arm : simd::availableArms()) {
        ASSERT_TRUE(simd::setActiveArm(arm));
        sc::detail::CounterStream stream{77, 0};
        std::vector<std::uint64_t> got((length + 63) / 64);
        sc::detail::bernoulliFill(got.data(), length, p, stream);
        EXPECT_EQ(got, want) << simd::armName(arm);
        EXPECT_EQ(stream.counter, length);
        // Not the constant-fill path: this is a genuine stochastic
        // stream that happens to be extremely dense.
        std::size_t ones = 0;
        for (const std::uint64_t w : got)
            ones += static_cast<std::size_t>(__builtin_popcountll(w));
        EXPECT_EQ(ones, length) << "astronomically unlikely zero bit";
    }
}

TEST(CounterFill, ThresholdEdgeNearZeroScale)
{
    // p = 2^-64 maps to threshold 1: a bit fires only when the raw
    // draw is exactly 0 (probability 2^-64 — none expected in 4096
    // bits except with probability ~2e-16).
    ArmRestore restore;
    const double p = std::ldexp(1.0, -64);
    ASSERT_EQ(thresholdFor(p), 1u);
    const std::size_t length = 4096 + 13;
    const auto want = referenceWords(length, 78, 0, 1);
    for (const simd::Arm arm : simd::availableArms()) {
        ASSERT_TRUE(simd::setActiveArm(arm));
        sc::detail::CounterStream stream{78, 0};
        std::vector<std::uint64_t> got((length + 63) / 64,
                                       ~std::uint64_t{0});
        sc::detail::bernoulliFill(got.data(), length, p, stream);
        EXPECT_EQ(got, want) << simd::armName(arm);
        for (const std::uint64_t w : got)
            EXPECT_EQ(w, 0u) << "astronomically unlikely one bit";
    }
    // One notch up, 2^-63, still generates through the counter kernel
    // with threshold 2.
    EXPECT_EQ(thresholdFor(std::ldexp(1.0, -63)), 2u);
}

TEST(CounterFill, ExactZeroAndOneWithTailWords)
{
    ArmRestore restore;
    for (const std::size_t length : {65u, 129u}) {
        for (const simd::Arm arm : simd::availableArms()) {
            ASSERT_TRUE(simd::setActiveArm(arm));
            const std::size_t words = (length + 63) / 64;
            // p = 0: all words zero; counter still advances.
            sc::detail::CounterStream zs{91, 7};
            std::vector<std::uint64_t> zero(words, ~std::uint64_t{0});
            sc::detail::bernoulliFill(zero.data(), length, 0.0, zs);
            EXPECT_EQ(zs.counter, 7 + length);
            for (const std::uint64_t w : zero)
                EXPECT_EQ(w, 0u) << simd::armName(arm);
            // p = 1: all in-range bits one, tail bits zero; counter
            // advances identically.
            sc::detail::CounterStream os{91, 7};
            std::vector<std::uint64_t> ones(words, 0);
            sc::detail::bernoulliFill(ones.data(), length, 1.0, os);
            EXPECT_EQ(os.counter, 7 + length);
            for (std::size_t w = 0; w + 1 < words; ++w)
                EXPECT_EQ(ones[w], ~std::uint64_t{0});
            EXPECT_EQ(ones.back(),
                      (std::uint64_t{1} << (length % 64)) - 1)
                << simd::armName(arm);
        }
    }
}

TEST(CounterFill, PositionStability)
{
    // A stream's bits depend only on (seed, starting counter): filling
    // a constant stream first must leave the next stream's words
    // identical to a direct fill at the same counter base.
    const std::size_t window = 67;
    sc::detail::CounterStream a{1234, 0};
    std::vector<std::uint64_t> skip(2), after_constant(2);
    sc::detail::bernoulliFill(skip.data(), window, 0.0, a);
    sc::detail::bernoulliFill(after_constant.data(), window, 0.4, a);

    sc::detail::CounterStream b{1234, window};
    std::vector<std::uint64_t> direct(2);
    sc::detail::bernoulliFill(direct.data(), window, 0.4, b);
    EXPECT_EQ(after_constant, direct);

    // And the same holds when the first stream is stochastic.
    sc::detail::CounterStream c{1234, 0};
    std::vector<std::uint64_t> stoch(2), after_stoch(2);
    sc::detail::bernoulliFill(stoch.data(), window, 0.9, c);
    sc::detail::bernoulliFill(after_stoch.data(), window, 0.4, c);
    EXPECT_EQ(after_stoch, direct);
}

TEST(CounterFill, RngOverloadConsumesExactlyOneDraw)
{
    // The Rng convenience overload seeds a fresh counter stream with
    // one raw draw; constant probabilities keep the historical
    // zero-draw contract.
    Rng probe(321);
    const std::uint64_t first = probe.raw()();
    const std::uint64_t second = probe.raw()();

    Rng rng(321);
    const sc::Bitstream s = sc::Bitstream::bernoulli(1000, 0.3, rng);
    EXPECT_EQ(rng.raw()(), second); // exactly one draw consumed

    sc::detail::CounterStream stream{first, 0};
    std::vector<std::uint64_t> want(
        sc::detail::wordsForLength(1000));
    sc::detail::bernoulliFill(want.data(), 1000, 0.3, stream);
    EXPECT_EQ(s.words(), want);

    Rng constant(321);
    const sc::Bitstream z = sc::Bitstream::bernoulli(64, 0.0, constant);
    const sc::Bitstream o = sc::Bitstream::bernoulli(64, 1.0, constant);
    EXPECT_EQ(constant.raw()(), first); // no draws consumed
    EXPECT_EQ(z.popcount(), 0u);
    EXPECT_EQ(o.popcount(), 64u);
}

TEST(CounterFill, StatisticalDensityMatchesProbability)
{
    // Re-baselined statistics for the new generator: stream density
    // must track p with the usual sqrt(L) tolerance.
    sc::detail::CounterStream stream{0xfeedULL, 0};
    const std::size_t length = 200000;
    std::vector<std::uint64_t> words(
        sc::detail::wordsForLength(length));
    for (const double p : {0.03, 0.25, 0.5, 0.77, 0.999}) {
        sc::detail::bernoulliFill(words.data(), length, p, stream);
        std::size_t ones = 0;
        for (const std::uint64_t w : words)
            ones += static_cast<std::size_t>(__builtin_popcountll(w));
        EXPECT_NEAR(
            static_cast<double>(ones) / static_cast<double>(length), p,
            0.005)
            << "p=" << p;
    }
}

TEST(CounterFill, DrawAccountingMatchesObservedConsumption)
{
    // The hardware ledger's bernoulliDraws column is read back from
    // the counter streams; the seeded crossbar observe must therefore
    // report exactly Cs * L draws per sample on every arm — constant
    // (p = 0/1) columns included, per the position-stability contract
    // — and CounterStream::consumed() must equal that tally.
    ArmRestore restore;
    const aqfp::AttenuationModel atten;
    const std::size_t cs = 5, window = 77;
    crossbar::CrossbarArray xbar(cs, atten, 2.4);
    // Leave the array unprogrammed: every column current is 0 and some
    // probabilities sit at exact constants depending on thresholds —
    // the draws must not depend on that.
    xbar.setColumnThreshold(0, 1e9);  // probOne == 0
    xbar.setColumnThreshold(1, -1e9); // probOne == 1

    const std::vector<std::vector<int>> batch(
        3, std::vector<int>(cs, 1));
    const std::vector<std::uint64_t> seeds = {7, 8, 9};
    for (const simd::Arm arm : simd::availableArms()) {
        ASSERT_TRUE(simd::setActiveArm(arm));
        aqfp::TileCounts counts;
        xbar.observeBatchSeeded(batch, window, seeds, &counts);
        EXPECT_EQ(counts.observations, batch.size())
            << simd::armName(arm);
        EXPECT_EQ(counts.cycles, batch.size() * window)
            << simd::armName(arm);
        EXPECT_EQ(counts.bernoulliDraws, batch.size() * cs * window)
            << simd::armName(arm);
    }

    sc::detail::CounterStream stream{42, 0};
    std::vector<std::uint64_t> words(
        sc::detail::wordsForLength(window));
    sc::detail::bernoulliFill(words.data(), window, 0.0, stream);
    sc::detail::bernoulliFill(words.data(), window, 0.5, stream);
    EXPECT_EQ(stream.consumed(), 2 * window);
}

// --- end-to-end determinism ---

TEST(CounterDeterminism, ExecutorBitIdenticalAcrossThreadsAndArms)
{
    // The acceptance contract of the counter-based generator: the
    // executor's outputs are a pure function of (layer, inputs, Rng
    // state) — identical at 1/4/8 threads and on every dispatch arm.
    ArmRestore restore;
    const aqfp::AttenuationModel atten;
    const crossbar::CrossbarMapper mapper(8, atten, 2.4);
    Rng setup(99);
    Tensor w({20, 24});
    for (std::size_t i = 0; i < w.size(); ++i)
        w[i] = setup.bernoulli(0.5) ? 1.0f : -1.0f;
    crossbar::MappedLayer layer = mapper.map(w);
    crossbar::CrossbarMapper::setThresholds(
        layer, std::vector<double>(20, 0.0));
    std::vector<std::vector<int>> batch(3, std::vector<int>(24));
    for (auto &sample : batch)
        for (auto &a : sample)
            a = setup.bernoulli(0.5) ? 1 : -1;

    ASSERT_TRUE(simd::setActiveArm(simd::Arm::Scalar));
    crossbar::TileExecutor ref_exec(16, false, 0.25, 1);
    Rng ref_rng(1001);
    const auto ref = ref_exec.forward(layer, batch, ref_rng);

    for (const simd::Arm arm : simd::availableArms()) {
        ASSERT_TRUE(simd::setActiveArm(arm));
        for (const std::size_t threads : {1u, 4u, 8u}) {
            crossbar::TileExecutor exec(16, false, 0.25, threads);
            Rng rng(1001);
            EXPECT_EQ(exec.forward(layer, batch, rng), ref)
                << simd::armName(arm) << " threads " << threads;
        }
    }
}

} // namespace
