/**
 * @file
 * Tests for the clocking-scheme optimization (Section 4.4): path
 * balancing buffer counts under 4/8/16-phase clocking and the
 * buffer-chain memory phase reduction.
 */

#include <gtest/gtest.h>

#include "aqfp/clocking.h"

using namespace superbnn;
using namespace superbnn::aqfp;

TEST(PathBalancing, AdjacentEdgesNeedNoBuffers)
{
    for (std::size_t phases : {4u, 8u, 16u})
        EXPECT_EQ(ClockingOptimizer::buffersForEdge(1, phases), 0u);
}

TEST(PathBalancing, FourPhaseNeedsGapMinusOne)
{
    for (std::size_t gap = 1; gap <= 10; ++gap)
        EXPECT_EQ(ClockingOptimizer::buffersForEdge(gap, 4), gap - 1);
}

TEST(PathBalancing, MorePhasesNeverNeedMoreBuffers)
{
    for (std::size_t gap = 1; gap <= 12; ++gap) {
        const auto b4 = ClockingOptimizer::buffersForEdge(gap, 4);
        const auto b8 = ClockingOptimizer::buffersForEdge(gap, 8);
        const auto b16 = ClockingOptimizer::buffersForEdge(gap, 16);
        EXPECT_LE(b8, b4);
        EXPECT_LE(b16, b8);
    }
}

TEST(PathBalancing, SpanHalvesBuffersAtEightPhase)
{
    EXPECT_EQ(ClockingOptimizer::buffersForEdge(5, 4), 4u);
    EXPECT_EQ(ClockingOptimizer::buffersForEdge(5, 8), 2u);
    EXPECT_EQ(ClockingOptimizer::buffersForEdge(5, 16), 1u);
}

TEST(Netlist, AddGateTracksDepth)
{
    LogicNetlist net;
    const auto a = net.addGate(CellType::Buffer, 0);
    const auto b = net.addGate(CellType::And, 2, {a});
    EXPECT_EQ(net.depth(), 3u);
    EXPECT_EQ(net.gates()[b].fanin[0], a);
}

TEST(Netlist, LogicJjSumsGates)
{
    CellLibrary lib;
    LogicNetlist net;
    net.addGate(CellType::Buffer, 0);
    net.addGate(CellType::Majority, 1, {0});
    EXPECT_EQ(net.logicJj(lib),
              lib.jjCount(CellType::Buffer)
                  + lib.jjCount(CellType::Majority));
}

TEST(Netlist, RandomGeneratorIsDeterministic)
{
    Rng rng_a(77), rng_b(77);
    const auto a = LogicNetlist::random(500, 12, 0.4, rng_a);
    const auto b = LogicNetlist::random(500, 12, 0.4, rng_b);
    ASSERT_EQ(a.gates().size(), b.gates().size());
    for (std::size_t i = 0; i < a.gates().size(); ++i) {
        EXPECT_EQ(a.gates()[i].level, b.gates()[i].level);
        EXPECT_EQ(a.gates()[i].fanin, b.gates()[i].fanin);
    }
}

TEST(ClockingComparison, PaperReductionsAchieved)
{
    // Section 4.4: at least 20.8% (8-phase) and 27.3% (16-phase) total-JJ
    // reduction on compute logic.
    Rng rng(2023);
    const auto net = LogicNetlist::random(4000, 24, 0.5, rng);
    const ClockingOptimizer opt;
    const auto reports = opt.compare(net);
    ASSERT_EQ(reports.size(), 3u);
    EXPECT_EQ(reports[0].phases, 4u);
    EXPECT_DOUBLE_EQ(reports[0].reductionVs4Phase, 0.0);
    EXPECT_GE(reports[1].reductionVs4Phase, 0.208)
        << "8-phase reduction below the paper's bound";
    EXPECT_GE(reports[2].reductionVs4Phase, 0.273)
        << "16-phase reduction below the paper's bound";
    // Sanity: reductions stay physically plausible (< 60%).
    EXPECT_LT(reports[2].reductionVs4Phase, 0.6);
}

TEST(ClockingComparison, SixteenBeatsEight)
{
    Rng rng(5);
    const auto net = LogicNetlist::random(2000, 16, 0.4, rng);
    const ClockingOptimizer opt;
    const auto reports = opt.compare(net);
    EXPECT_GT(reports[2].reductionVs4Phase,
              reports[1].reductionVs4Phase);
    EXPECT_LT(reports[1].bufferCount, reports[0].bufferCount);
}

TEST(ClockingComparison, LogicJjUnchangedByPhases)
{
    Rng rng(6);
    const auto net = LogicNetlist::random(1000, 10, 0.3, rng);
    const ClockingOptimizer opt;
    const auto reports = opt.compare(net);
    EXPECT_EQ(reports[0].logicJj, reports[1].logicJj);
    EXPECT_EQ(reports[0].logicJj, reports[2].logicJj);
}

class SkipBiasSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(SkipBiasSweep, MoreSkewMeansMoreBuffers)
{
    Rng rng(9);
    const double bias = GetParam();
    const auto net = LogicNetlist::random(1500, 14, bias, rng);
    const ClockingOptimizer opt;
    const auto rep = opt.analyze(net, 4);
    // Buffer pressure grows with skip bias; just check internal
    // consistency of the accounting here.
    EXPECT_EQ(rep.totalJj, rep.logicJj + rep.bufferJj);
    EXPECT_EQ(rep.bufferJj, rep.bufferCount * 2u);
}

INSTANTIATE_TEST_SUITE_P(Biases, SkipBiasSweep,
                         ::testing::Values(0.0, 0.2, 0.4, 0.6));

// --- buffer-chain memory ---

TEST(Bcm, TwentyPercentReductionFrom4To3Phases)
{
    const BufferChainMemory mem4(64, 16, 4);
    const BufferChainMemory mem3(64, 16, 3);
    const double reduction = 1.0
        - static_cast<double>(mem3.totalJj())
            / static_cast<double>(mem4.totalJj());
    EXPECT_NEAR(reduction, 0.20, 1e-9);
}

TEST(Bcm, FixedPartIndependentOfPhases)
{
    const BufferChainMemory mem4(32, 8, 4);
    const BufferChainMemory mem3(32, 8, 3);
    EXPECT_EQ(mem4.fixedJj(), mem3.fixedJj());
}

TEST(Bcm, ChainScalesWithCapacityAndPhases)
{
    const BufferChainMemory a(10, 8, 4);
    const BufferChainMemory b(20, 8, 4);
    const BufferChainMemory c(10, 8, 8);
    EXPECT_EQ(b.chainJj(), 2u * a.chainJj());
    EXPECT_EQ(c.chainJj(), 2u * a.chainJj());
}

TEST(Bcm, TotalIsChainPlusFixed)
{
    const BufferChainMemory mem(7, 5, 4);
    EXPECT_EQ(mem.totalJj(), mem.chainJj() + mem.fixedJj());
}
