/**
 * @file
 * Gradient and behaviour tests for the float nn layers. Analytic
 * backward passes are verified against central-difference numerics.
 */

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "nn/activation.h"
#include "nn/batchnorm.h"
#include "nn/conv.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/pooling.h"
#include "nn/sequential.h"

using namespace superbnn;
using namespace superbnn::nn;

namespace {

/**
 * Check dL/dinput of a module against numeric differentiation, with
 * L = sum(output * probe) for a fixed random probe.
 */
void
checkInputGradient(Module &m, const Tensor &input, float tol = 2e-2f)
{
    Rng rng(404);
    Tensor out = m.forward(input, true);
    Tensor probe = Tensor::randn(out.shape(), rng);
    Tensor dx = m.backward(probe);

    // Numeric differentiation runs in training mode so layers whose
    // training/eval functions differ (BatchNorm) are differentiated
    // against the same function the backward pass was derived from.
    const float eps = 1e-2f;
    Tensor x = input;
    for (std::size_t i = 0; i < std::min<std::size_t>(x.size(), 24);
         ++i) {
        Tensor xp = x, xm = x;
        xp[i] += eps;
        xm[i] -= eps;
        const Tensor op = m.forward(xp, true);
        const Tensor om = m.forward(xm, true);
        double num = 0.0;
        for (std::size_t j = 0; j < op.size(); ++j)
            num += (static_cast<double>(op[j]) - om[j]) * probe[j];
        num /= 2.0 * eps;
        EXPECT_NEAR(dx[i], num, tol)
            << "input gradient mismatch at " << i;
    }
}

/** Same check for one parameter tensor. */
void
checkParamGradient(Module &m, Parameter &p, const Tensor &input,
                   float tol = 2e-2f)
{
    Rng rng(505);
    p.zeroGrad();
    Tensor out = m.forward(input, true);
    Tensor probe = Tensor::randn(out.shape(), rng);
    m.backward(probe);

    const float eps = 1e-2f;
    for (std::size_t i = 0; i < std::min<std::size_t>(p.value.size(), 24);
         ++i) {
        const float keep = p.value[i];
        p.value[i] = keep + eps;
        const Tensor op = m.forward(input, true);
        p.value[i] = keep - eps;
        const Tensor om = m.forward(input, true);
        p.value[i] = keep;
        double num = 0.0;
        for (std::size_t j = 0; j < op.size(); ++j)
            num += (static_cast<double>(op[j]) - om[j]) * probe[j];
        num /= 2.0 * eps;
        EXPECT_NEAR(p.grad[i], num, tol)
            << "param gradient mismatch at " << i;
    }
}

} // namespace

TEST(Linear, ForwardKnownValues)
{
    Rng rng(1);
    Linear lin(2, 2, rng, true);
    lin.weight().value = Tensor::fromVector({1, 2, 3, 4}).reshaped({2, 2});
    lin.bias().value = Tensor::fromVector({10, 20});
    Tensor x = Tensor::fromVector({1, 1}).reshaped({1, 2});
    Tensor y = lin.forward(x, false);
    EXPECT_FLOAT_EQ(y.at(0, 0), 13.0f); // 1*1+1*2+10
    EXPECT_FLOAT_EQ(y.at(0, 1), 27.0f); // 1*3+1*4+20
}

TEST(Linear, InputGradient)
{
    Rng rng(2);
    Linear lin(5, 3, rng, true);
    Tensor x = Tensor::randn({4, 5}, rng);
    checkInputGradient(lin, x);
}

TEST(Linear, WeightGradient)
{
    Rng rng(3);
    Linear lin(4, 3, rng, true);
    Tensor x = Tensor::randn({3, 4}, rng);
    checkParamGradient(lin, lin.weight(), x);
}

TEST(Linear, BiasGradient)
{
    Rng rng(4);
    Linear lin(4, 3, rng, true);
    Tensor x = Tensor::randn({3, 4}, rng);
    checkParamGradient(lin, lin.bias(), x);
}

TEST(Linear, NoBiasHasOneParameter)
{
    Rng rng(5);
    Linear lin(4, 3, rng, false);
    EXPECT_EQ(lin.parameters().size(), 1u);
}

TEST(Conv2d, InputGradient)
{
    Rng rng(6);
    Conv2d conv(2, 3, 3, 1, 1, rng, true);
    Tensor x = Tensor::randn({2, 2, 5, 5}, rng);
    checkInputGradient(conv, x);
}

TEST(Conv2d, WeightGradient)
{
    Rng rng(7);
    Conv2d conv(2, 2, 3, 1, 1, rng, true);
    Tensor x = Tensor::randn({1, 2, 4, 4}, rng);
    checkParamGradient(conv, conv.weight(), x);
}

TEST(Conv2d, BiasGradient)
{
    Rng rng(8);
    Conv2d conv(1, 2, 3, 1, 0, rng, true);
    Tensor x = Tensor::randn({2, 1, 5, 5}, rng);
    checkParamGradient(conv, conv.bias(), x);
}

TEST(BatchNorm, NormalizesBatchStatistics)
{
    Rng rng(9);
    BatchNorm bn(4);
    Tensor x = Tensor::randn({64, 4}, rng, 3.0f, 2.0f);
    Tensor y = bn.forward(x, true);
    for (std::size_t c = 0; c < 4; ++c) {
        double mean = 0.0, var = 0.0;
        for (std::size_t i = 0; i < 64; ++i)
            mean += y.at(i, c);
        mean /= 64.0;
        for (std::size_t i = 0; i < 64; ++i)
            var += (y.at(i, c) - mean) * (y.at(i, c) - mean);
        var /= 64.0;
        EXPECT_NEAR(mean, 0.0, 1e-4);
        EXPECT_NEAR(var, 1.0, 1e-2);
    }
}

TEST(BatchNorm, RunningStatsConverge)
{
    Rng rng(10);
    BatchNorm bn(2, 0.5f);
    for (int i = 0; i < 40; ++i) {
        Tensor x = Tensor::randn({256, 2}, rng, 5.0f, 3.0f);
        bn.forward(x, true);
    }
    EXPECT_NEAR(bn.runningMean()[0], 5.0, 0.5);
    EXPECT_NEAR(std::sqrt(bn.runningVar()[0]), 3.0, 0.5);
}

TEST(BatchNorm, EvalUsesRunningStats)
{
    Rng rng(11);
    BatchNorm bn(1, 0.9f);
    Tensor x = Tensor::randn({512, 1}, rng, 2.0f, 1.0f);
    bn.forward(x, true);
    // A wildly different eval batch should be normalized by the running
    // stats, not its own.
    Tensor z({4, 1}, 2.0f);
    Tensor y = bn.forward(z, false);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_NEAR(y[i], 0.0f, 0.3f);
}

TEST(BatchNorm, InputGradient2d)
{
    Rng rng(12);
    BatchNorm bn(3);
    Tensor x = Tensor::randn({8, 3}, rng);
    checkInputGradient(bn, x, 5e-2f);
}

TEST(BatchNorm, InputGradient4d)
{
    Rng rng(13);
    BatchNorm bn(2);
    Tensor x = Tensor::randn({2, 2, 3, 3}, rng);
    checkInputGradient(bn, x, 5e-2f);
}

TEST(BatchNorm, GammaBetaGradients)
{
    Rng rng(14);
    BatchNorm bn(3);
    Tensor x = Tensor::randn({8, 3}, rng);
    checkParamGradient(bn, bn.gamma(), x, 5e-2f);
    checkParamGradient(bn, bn.beta(), x, 5e-2f);
}

TEST(HardTanhLayer, ClampsAndMasksGradient)
{
    HardTanh ht;
    Tensor x = Tensor::fromVector({-2.0f, -0.5f, 0.5f, 2.0f});
    Tensor y = ht.forward(x, true);
    EXPECT_FLOAT_EQ(y[0], -1.0f);
    EXPECT_FLOAT_EQ(y[1], -0.5f);
    EXPECT_FLOAT_EQ(y[2], 0.5f);
    EXPECT_FLOAT_EQ(y[3], 1.0f);
    Tensor g({4}, 1.0f);
    Tensor dx = ht.backward(g);
    EXPECT_FLOAT_EQ(dx[0], 0.0f);
    EXPECT_FLOAT_EQ(dx[1], 1.0f);
    EXPECT_FLOAT_EQ(dx[2], 1.0f);
    EXPECT_FLOAT_EQ(dx[3], 0.0f);
}

TEST(ReLULayer, ForwardBackward)
{
    ReLU relu;
    Tensor x = Tensor::fromVector({-1.0f, 2.0f});
    Tensor y = relu.forward(x, true);
    EXPECT_FLOAT_EQ(y[0], 0.0f);
    EXPECT_FLOAT_EQ(y[1], 2.0f);
    Tensor dx = relu.backward(Tensor({2}, 1.0f));
    EXPECT_FLOAT_EQ(dx[0], 0.0f);
    EXPECT_FLOAT_EQ(dx[1], 1.0f);
}

TEST(SignSTELayer, BinarizesWithClippedGradient)
{
    SignSTE s;
    Tensor x = Tensor::fromVector({-0.3f, 0.0f, 0.7f, 3.0f});
    Tensor y = s.forward(x, true);
    EXPECT_FLOAT_EQ(y[0], -1.0f);
    EXPECT_FLOAT_EQ(y[1], 1.0f); // sign(0) = +1
    EXPECT_FLOAT_EQ(y[2], 1.0f);
    Tensor dx = s.backward(Tensor({4}, 1.0f));
    EXPECT_FLOAT_EQ(dx[0], 1.0f);
    EXPECT_FLOAT_EQ(dx[3], 0.0f); // outside [-1, 1]
}

TEST(MaxPoolLayer, BackwardRoutesToArgmax)
{
    MaxPool2d pool(2, 2);
    Tensor x({1, 1, 2, 2});
    x[0] = 1.0f;
    x[1] = 5.0f;
    x[2] = 2.0f;
    x[3] = 3.0f;
    pool.forward(x, true);
    Tensor g({1, 1, 1, 1}, 2.0f);
    Tensor dx = pool.backward(g);
    EXPECT_FLOAT_EQ(dx[1], 2.0f);
    EXPECT_FLOAT_EQ(dx[0], 0.0f);
}

TEST(AvgPoolLayer, BackwardSpreadsUniformly)
{
    AvgPool2d pool(2, 2);
    Tensor x = Tensor::randn({1, 1, 2, 2}, globalRng());
    pool.forward(x, true);
    Tensor dx = pool.backward(Tensor({1, 1, 1, 1}, 4.0f));
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(dx[i], 1.0f);
}

TEST(FlattenLayer, RoundTrip)
{
    Flatten f;
    Tensor x = Tensor::randn({2, 3, 4, 4}, globalRng());
    Tensor y = f.forward(x, true);
    EXPECT_EQ(y.dim(0), 2u);
    EXPECT_EQ(y.dim(1), 48u);
    Tensor dx = f.backward(y);
    EXPECT_EQ(dx.shape(), x.shape());
    EXPECT_TRUE(dx.allClose(x));
}

TEST(SequentialContainer, ComposesAndCollectsParams)
{
    Rng rng(15);
    Sequential net;
    net.emplace<Linear>(4, 8, rng);
    net.emplace<ReLU>();
    net.emplace<Linear>(8, 2, rng);
    EXPECT_EQ(net.size(), 3u);
    EXPECT_EQ(net.parameters().size(), 4u);
    Tensor x = Tensor::randn({3, 4}, rng);
    Tensor y = net.forward(x, true);
    EXPECT_EQ(y.dim(1), 2u);
    Tensor dx = net.backward(Tensor(y.shape(), 1.0f));
    EXPECT_EQ(dx.shape(), x.shape());
}

TEST(CrossEntropy, KnownValue)
{
    SoftmaxCrossEntropy loss;
    Tensor logits({1, 2});
    logits[0] = 0.0f;
    logits[1] = 0.0f;
    const double l = loss.forward(logits, {0});
    EXPECT_NEAR(l, std::log(2.0), 1e-6);
}

TEST(CrossEntropy, GradientMatchesNumeric)
{
    Rng rng(16);
    SoftmaxCrossEntropy loss;
    Tensor logits = Tensor::randn({4, 5}, rng);
    const std::vector<std::size_t> labels = {1, 0, 4, 2};
    loss.forward(logits, labels);
    Tensor grad = loss.backward();
    const float eps = 1e-3f;
    for (std::size_t i = 0; i < logits.size(); ++i) {
        Tensor lp = logits, lm = logits;
        lp[i] += eps;
        lm[i] -= eps;
        SoftmaxCrossEntropy l2;
        const double num =
            (l2.forward(lp, labels) - l2.forward(lm, labels))
            / (2.0 * eps);
        EXPECT_NEAR(grad[i], num, 1e-3);
    }
}

TEST(CrossEntropy, AccuracyHelper)
{
    Tensor logits({2, 3});
    logits.at(0, 2) = 5.0f;
    logits.at(1, 0) = 5.0f;
    EXPECT_DOUBLE_EQ(accuracy(logits, {2, 0}), 1.0);
    EXPECT_DOUBLE_EQ(accuracy(logits, {0, 0}), 0.5);
}

TEST(SgdOptimizer, DescendsQuadratic)
{
    // Minimize f(w) = (w - 3)^2 by hand-fed gradients.
    Parameter w(Tensor({1}, 0.0f));
    Sgd sgd(0.1, 0.0, 0.0);
    for (int i = 0; i < 100; ++i) {
        w.zeroGrad();
        w.grad[0] = 2.0f * (w.value[0] - 3.0f);
        sgd.step({&w});
    }
    EXPECT_NEAR(w.value[0], 3.0f, 1e-3f);
}

TEST(SgdOptimizer, MomentumAcceleratesOnConstantGradient)
{
    Parameter a(Tensor({1}, 0.0f));
    Parameter b(Tensor({1}, 0.0f));
    Sgd plain(0.1, 0.0, 0.0);
    Sgd heavy(0.1, 0.9, 0.0);
    for (int i = 0; i < 10; ++i) {
        a.grad[0] = 1.0f;
        b.grad[0] = 1.0f;
        plain.step({&a});
        heavy.step({&b});
    }
    EXPECT_LT(b.value[0], a.value[0]); // moved further (more negative)
}

TEST(SgdOptimizer, WeightDecayShrinksWeights)
{
    Parameter w(Tensor({1}, 1.0f));
    Sgd sgd(0.1, 0.0, 0.5);
    w.zeroGrad();
    sgd.step({&w});
    EXPECT_LT(w.value[0], 1.0f);
}

TEST(CosineSchedule, WarmupThenDecay)
{
    CosineWarmupSchedule s(1.0, 5, 100);
    EXPECT_NEAR(s.lrAt(0), 0.2, 1e-9);
    EXPECT_NEAR(s.lrAt(4), 1.0, 1e-9);
    EXPECT_NEAR(s.lrAt(5), 1.0, 1e-9);
    EXPECT_GT(s.lrAt(30), s.lrAt(60));
    EXPECT_NEAR(s.lrAt(100), 0.0, 1e-9);
}

TEST(CosineSchedule, MonotoneAfterWarmup)
{
    CosineWarmupSchedule s(0.1, 2, 50);
    for (std::size_t e = 2; e + 1 < 50; ++e)
        EXPECT_GE(s.lrAt(e), s.lrAt(e + 1));
}
