/**
 * @file
 * Differential tests of the SIMD kernel dispatch layer: every arm
 * available on the host must be bit-identical to the scalar reference
 * across the word-loop primitives, Bernoulli generation, batched
 * layouts (including tail-word masking at odd lengths x odd batch
 * sizes), and the crossbar column-sum path.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "aqfp/attenuation.h"
#include "crossbar/crossbar_array.h"
#include "sc/accumulation.h"
#include "sc/apc.h"
#include "sc/bitstream.h"
#include "sc/bitstream_batch.h"
#include "simd/kernels.h"
#include "simd_test_util.h"
#include "tensor/random.h"

namespace {

using namespace superbnn;

/// The PR-1 edge-case lengths: word-boundary straddles plus a long one.
const std::size_t kLengths[] = {1, 63, 64, 65, 127, 128, 129, 1000};

using superbnn::test::ArmRestore;

std::uint64_t
tailMaskFor(std::size_t length)
{
    const std::size_t tail = length % 64;
    return tail == 0 ? ~std::uint64_t{0}
                     : (std::uint64_t{1} << tail) - 1;
}

/// Random packed words honoring the zero-tail invariant.
std::vector<std::uint64_t>
randomWords(std::size_t length, Rng &rng)
{
    std::vector<std::uint64_t> words((length + 63) / 64);
    for (auto &w : words)
        w = rng.raw()();
    if (!words.empty())
        words.back() &= tailMaskFor(length);
    return words;
}

std::size_t
bruteForcePopcount(const std::vector<std::uint64_t> &words)
{
    std::size_t ones = 0;
    for (std::uint64_t w : words)
        for (int b = 0; b < 64; ++b)
            ones += (w >> b) & 1u;
    return ones;
}

TEST(SimdDispatch, ScalarAlwaysAvailable)
{
    ASSERT_NE(simd::kernelsFor(simd::Arm::Scalar), nullptr);
    const auto arms = simd::availableArms();
    ASSERT_FALSE(arms.empty());
    EXPECT_EQ(arms.front(), simd::Arm::Scalar);
}

TEST(SimdDispatch, ActiveArmIsAvailable)
{
    const auto arms = simd::availableArms();
    bool found = false;
    for (const simd::Arm arm : arms)
        found = found || arm == simd::activeArm();
    EXPECT_TRUE(found);
}

TEST(SimdDispatch, ArmNamesRoundTrip)
{
    for (const simd::Arm arm :
         {simd::Arm::Scalar, simd::Arm::Avx2, simd::Arm::Avx512,
          simd::Arm::Neon}) {
        simd::Arm parsed;
        ASSERT_TRUE(simd::armFromName(simd::armName(arm), parsed));
        EXPECT_EQ(parsed, arm);
    }
    simd::Arm parsed;
    EXPECT_FALSE(simd::armFromName("sse9", parsed));
    EXPECT_FALSE(simd::armFromName("", parsed));
    EXPECT_FALSE(simd::armFromName(nullptr, parsed));
}

TEST(SimdDispatch, SetActiveArmRoundTrips)
{
    ArmRestore restore;
    for (const simd::Arm arm : simd::availableArms()) {
        ASSERT_TRUE(simd::setActiveArm(arm));
        EXPECT_EQ(simd::activeArm(), arm);
        EXPECT_STREQ(simd::active().name, simd::armName(arm));
    }
}

TEST(SimdKernels, PopcountMatchesScalarAndBruteForce)
{
    Rng rng(101);
    const simd::KernelSet &scalar =
        *simd::kernelsFor(simd::Arm::Scalar);
    for (const std::size_t length : kLengths) {
        const auto words = randomWords(length, rng);
        const std::size_t expected = bruteForcePopcount(words);
        for (const simd::Arm arm : simd::availableArms()) {
            const simd::KernelSet &k = *simd::kernelsFor(arm);
            EXPECT_EQ(k.popcountWords(words.data(), words.size()),
                      expected)
                << simd::armName(arm) << " length " << length;
        }
        EXPECT_EQ(scalar.popcountWords(words.data(), words.size()),
                  expected);
    }
}

TEST(SimdKernels, FusedPopcountsMatchScalar)
{
    Rng rng(102);
    const simd::KernelSet &scalar =
        *simd::kernelsFor(simd::Arm::Scalar);
    for (const std::size_t length : kLengths) {
        const auto a = randomWords(length, rng);
        const auto b = randomWords(length, rng);
        const std::uint64_t mask = tailMaskFor(length);
        const std::size_t n = a.size();
        const std::size_t want_xnor =
            scalar.xnorPopcountWords(a.data(), b.data(), n, mask);
        const std::size_t want_and =
            scalar.andPopcountWords(a.data(), b.data(), n);
        const std::size_t want_or =
            scalar.orPopcountWords(a.data(), b.data(), n);
        // Ground truth for XNOR: matches = length - popcount(a ^ b).
        std::vector<std::uint64_t> x(n);
        for (std::size_t i = 0; i < n; ++i)
            x[i] = a[i] ^ b[i];
        ASSERT_EQ(want_xnor, length - bruteForcePopcount(x));
        for (const simd::Arm arm : simd::availableArms()) {
            const simd::KernelSet &k = *simd::kernelsFor(arm);
            EXPECT_EQ(
                k.xnorPopcountWords(a.data(), b.data(), n, mask),
                want_xnor)
                << simd::armName(arm) << " length " << length;
            EXPECT_EQ(k.andPopcountWords(a.data(), b.data(), n),
                      want_and)
                << simd::armName(arm) << " length " << length;
            EXPECT_EQ(k.orPopcountWords(a.data(), b.data(), n),
                      want_or)
                << simd::armName(arm) << " length " << length;
        }
    }
}

TEST(SimdKernels, XnorPopcountHandlesEmpty)
{
    for (const simd::Arm arm : simd::availableArms()) {
        const simd::KernelSet &k = *simd::kernelsFor(arm);
        EXPECT_EQ(k.xnorPopcountWords(nullptr, nullptr, 0,
                                      ~std::uint64_t{0}),
                  0u)
            << simd::armName(arm);
        EXPECT_EQ(k.popcountWords(nullptr, 0), 0u);
    }
}

TEST(SimdKernels, PackThresholdWordMatchesScalar)
{
    Rng rng(103);
    const simd::KernelSet &scalar =
        *simd::kernelsFor(simd::Arm::Scalar);
    const std::uint64_t thresholds[] = {
        0,
        1,
        std::uint64_t{1} << 32,
        std::uint64_t{1} << 63,
        ~std::uint64_t{0},
    };
    std::uint64_t draws[64];
    for (std::size_t count = 1; count <= 64; ++count) {
        for (const std::uint64_t threshold : thresholds) {
            for (std::size_t i = 0; i < count; ++i)
                draws[i] = rng.raw()();
            // A couple of draws exactly at the threshold exercise the
            // strict-inequality edge.
            if (count >= 2 && threshold > 0)
                draws[count / 2] = threshold;
            std::uint64_t expected = 0;
            for (std::size_t i = 0; i < count; ++i)
                expected |=
                    static_cast<std::uint64_t>(draws[i] < threshold)
                    << i;
            ASSERT_EQ(
                scalar.packThresholdWord(draws, count, threshold),
                expected);
            for (const simd::Arm arm : simd::availableArms())
                EXPECT_EQ(simd::kernelsFor(arm)->packThresholdWord(
                              draws, count, threshold),
                          expected)
                    << simd::armName(arm) << " count " << count;
        }
    }
}

TEST(SimdKernels, GenerateThresholdWordsMatchesScalar)
{
    // The counter-based Bernoulli kernel: every arm must reproduce the
    // scalar reference bit-for-bit for the same (seed, counter,
    // threshold), including tail words and mid-stream counter starts.
    // (tests/test_counter_rng.cc pins the scalar reference itself to
    // the documented SplitMix64 scheme.)
    const simd::KernelSet &scalar =
        *simd::kernelsFor(simd::Arm::Scalar);
    const std::uint64_t thresholds[] = {
        0,
        1,
        std::uint64_t{1} << 32,
        std::uint64_t{1} << 63,
        ~std::uint64_t{0} - 0x7FF,
        ~std::uint64_t{0},
    };
    const std::uint64_t counters[] = {0, 1, 64, 12345};
    for (const std::size_t length : kLengths) {
        for (const std::uint64_t threshold : thresholds) {
            for (const std::uint64_t counter : counters) {
                const std::uint64_t seed = 0xabcd0000 + length;
                std::vector<std::uint64_t> want((length + 63) / 64);
                scalar.generateThresholdWords(want.data(), length, seed,
                                              counter, threshold);
                // Tail invariant on the reference itself.
                if (length % 64 != 0)
                    EXPECT_EQ(want.back() >> (length % 64), 0u);
                for (const simd::Arm arm : simd::availableArms()) {
                    std::vector<std::uint64_t> got(want.size(),
                                                   ~std::uint64_t{0});
                    simd::kernelsFor(arm)->generateThresholdWords(
                        got.data(), length, seed, counter, threshold);
                    EXPECT_EQ(got, want)
                        << simd::armName(arm) << " length " << length
                        << " counter " << counter << " threshold "
                        << threshold;
                }
            }
        }
    }
}

TEST(SimdKernels, AccumulateColumnSumsMatchesScalar)
{
    Rng rng(104);
    for (const std::size_t n : {1u, 3u, 7u, 8u, 9u, 15u, 16u, 17u,
                                33u, 100u}) {
        std::vector<int> weights(n);
        for (auto &w : weights)
            w = static_cast<int>(rng.randint(-1, 1));
        for (const int a : {-1, 1, 0, 3}) {
            std::vector<int> base(n);
            for (auto &s : base)
                s = static_cast<int>(rng.randint(-50, 50));
            std::vector<int> expected = base;
            for (std::size_t c = 0; c < n; ++c)
                expected[c] += a * weights[c];
            for (const simd::Arm arm : simd::availableArms()) {
                std::vector<int> sums = base;
                simd::kernelsFor(arm)->accumulateColumnSums(
                    sums.data(), weights.data(), a, n);
                EXPECT_EQ(sums, expected)
                    << simd::armName(arm) << " n " << n << " a " << a;
            }
        }
    }
}

TEST(SimdStreams, BernoulliBitIdenticalAcrossArms)
{
    ArmRestore restore;
    for (const std::size_t length : kLengths) {
        for (const double p : {0.0, 0.3, 0.5, 0.977, 1.0}) {
            ASSERT_TRUE(simd::setActiveArm(simd::Arm::Scalar));
            Rng ref_rng(length * 7919 + 11);
            const sc::Bitstream ref =
                sc::Bitstream::bernoulli(length, p, ref_rng);
            const std::uint64_t ref_next_draw = ref_rng.raw()();
            for (const simd::Arm arm : simd::availableArms()) {
                ASSERT_TRUE(simd::setActiveArm(arm));
                Rng rng(length * 7919 + 11);
                const sc::Bitstream got =
                    sc::Bitstream::bernoulli(length, p, rng);
                EXPECT_EQ(got.words(), ref.words())
                    << simd::armName(arm) << " length " << length
                    << " p " << p;
                // Identical entropy consumption: the next draw agrees.
                EXPECT_EQ(rng.raw()(), ref_next_draw)
                    << simd::armName(arm) << " length " << length
                    << " p " << p;
            }
        }
    }
}

TEST(SimdStreams, StreamOpsBitIdenticalAcrossArms)
{
    ArmRestore restore;
    for (const std::size_t length : kLengths) {
        Rng rng(length + 5);
        const sc::Bitstream a =
            sc::Bitstream::bernoulli(length, 0.42, rng);
        const sc::Bitstream b =
            sc::Bitstream::bernoulli(length, 0.66, rng);
        ASSERT_TRUE(simd::setActiveArm(simd::Arm::Scalar));
        const std::size_t want_pop = a.popcount();
        const std::size_t want_xnor = a.xnorPopcount(b);
        const std::size_t want_and = a.andPopcount(b);
        ASSERT_EQ(want_xnor, a.xnorWith(b).popcount());
        for (const simd::Arm arm : simd::availableArms()) {
            ASSERT_TRUE(simd::setActiveArm(arm));
            EXPECT_EQ(a.popcount(), want_pop) << simd::armName(arm);
            EXPECT_EQ(a.xnorPopcount(b), want_xnor)
                << simd::armName(arm);
            EXPECT_EQ(a.andPopcount(b), want_and)
                << simd::armName(arm);
        }
    }
}

TEST(SimdStreams, BatchTailWordMaskingPerArm)
{
    ArmRestore restore;
    // Odd lengths x odd batch sizes: every segment ends in a partial
    // word and the segments are laid side by side, so a kernel that
    // reads or writes past a tail word corrupts its neighbor.
    for (const std::size_t length : {1u, 63u, 65u, 127u, 129u}) {
        for (const std::size_t batch_size : {1u, 3u, 5u, 7u}) {
            for (const simd::Arm arm : simd::availableArms()) {
                ASSERT_TRUE(simd::setActiveArm(arm));
                std::vector<double> probs(batch_size);
                std::vector<Rng> rngs;
                for (std::size_t b = 0; b < batch_size; ++b) {
                    probs[b] = (static_cast<double>(b) + 0.5)
                        / static_cast<double>(batch_size + 1);
                    rngs.emplace_back(1000 * length + b);
                }
                const sc::BitstreamBatch batch =
                    sc::BitstreamBatch::bernoulli(length, probs, rngs);
                ASSERT_EQ(batch.batch(), batch_size);
                const std::uint64_t mask = tailMaskFor(length);
                for (std::size_t b = 0; b < batch_size; ++b) {
                    // Tail invariant holds inside the packed batch.
                    const std::uint64_t last =
                        batch.words(b)[batch.wordsPerStream() - 1];
                    EXPECT_EQ(last & ~mask, 0u)
                        << simd::armName(arm) << " length " << length
                        << " sample " << b;
                    // Segment == the single-stream generation from the
                    // same seed under the same arm.
                    Rng clone(1000 * length + b);
                    const sc::Bitstream single =
                        sc::Bitstream::bernoulli(length, probs[b],
                                                 clone);
                    EXPECT_EQ(batch.stream(b).words(), single.words())
                        << simd::armName(arm) << " length " << length
                        << " sample " << b;
                    // Batch popcount == exact bit count.
                    std::size_t expected = 0;
                    for (const std::uint8_t bit : single.bits())
                        expected += bit;
                    EXPECT_EQ(batch.popcount(b), expected)
                        << simd::armName(arm) << " length " << length
                        << " sample " << b;
                }
            }
        }
    }
}

TEST(SimdStreams, AccumulationIdenticalAcrossArms)
{
    ArmRestore restore;
    // Odd crossbar count + dropped pairs exercises the or-popcount
    // dropped-carry path and the leftover unpaired stream.
    const std::size_t crossbars = 7;
    const std::size_t window = 129;
    const sc::AccumulationModule exact(crossbars, window, true);
    const sc::AccumulationModule approx(crossbars, window, false, 0.8);
    Rng rng(42);
    std::vector<sc::Bitstream> streams;
    for (std::size_t t = 0; t < crossbars; ++t)
        streams.push_back(sc::Bitstream::bernoulli(
            window, 0.1 + 0.1 * static_cast<double>(t), rng));
    ASSERT_TRUE(simd::setActiveArm(simd::Arm::Scalar));
    const std::size_t want_exact = exact.rawCount(streams);
    const std::size_t want_approx = approx.rawCount(streams);
    for (const simd::Arm arm : simd::availableArms()) {
        ASSERT_TRUE(simd::setActiveArm(arm));
        EXPECT_EQ(exact.rawCount(streams), want_exact)
            << simd::armName(arm);
        EXPECT_EQ(approx.rawCount(streams), want_approx)
            << simd::armName(arm);
    }
}

TEST(SimdCrossbar, ColumnSumsIdenticalAcrossArms)
{
    ArmRestore restore;
    // 19 columns: the kernels' vector widths (4/8/16 lanes) all leave a
    // ragged remainder.
    const std::size_t cs = 19;
    const aqfp::AttenuationModel atten;
    crossbar::CrossbarArray xbar(cs, atten, 2.4);
    Rng rng(77);
    for (std::size_t r = 0; r < cs; ++r)
        for (std::size_t c = 0; c < cs; ++c)
            if (rng.bernoulli(0.7))
                xbar.programCell(r, c, rng.bernoulli(0.5) ? 1 : -1);
    std::vector<std::vector<int>> batch;
    for (std::size_t b = 0; b < 3; ++b) {
        std::vector<int> acts(cs);
        for (auto &a : acts)
            a = static_cast<int>(rng.randint(-1, 1)); // 0 = padding row
        batch.push_back(std::move(acts));
    }
    ASSERT_TRUE(simd::setActiveArm(simd::Arm::Scalar));
    const std::vector<int> want = xbar.columnSums(batch[0]);
    // Per-column reference walks the LiM cells directly, so this also
    // pins the weight cache to the cell state.
    for (std::size_t c = 0; c < cs; ++c)
        ASSERT_EQ(want[c], xbar.columnSum(c, batch[0])) << c;
    const std::vector<int> want_batch = xbar.columnSumsBatch(batch);
    for (const simd::Arm arm : simd::availableArms()) {
        ASSERT_TRUE(simd::setActiveArm(arm));
        EXPECT_EQ(xbar.columnSums(batch[0]), want) << simd::armName(arm);
        EXPECT_EQ(xbar.columnSumsBatch(batch), want_batch)
            << simd::armName(arm);
    }
}

TEST(SimdCrossbar, WeightCacheTracksStuckCells)
{
    ArmRestore restore;
    const std::size_t cs = 13;
    const aqfp::AttenuationModel atten;
    crossbar::CrossbarArray xbar(cs, atten, 2.4);
    Rng rng(88);
    std::vector<std::vector<int>> weights(cs, std::vector<int>(cs));
    for (auto &row : weights)
        for (auto &w : row)
            w = rng.bernoulli(0.5) ? 1 : -1;
    xbar.programWeights(weights);
    ASSERT_GT(xbar.injectStuckCells(0.3, rng), 0u);
    std::vector<int> acts(cs);
    for (auto &a : acts)
        a = rng.bernoulli(0.5) ? 1 : -1;
    // The per-column path reads LimCell state, the all-columns path
    // reads the cache; agreement on every arm means the cache followed
    // the fault injection.
    for (const simd::Arm arm : simd::availableArms()) {
        ASSERT_TRUE(simd::setActiveArm(arm));
        const std::vector<int> sums = xbar.columnSums(acts);
        for (std::size_t c = 0; c < cs; ++c)
            EXPECT_EQ(sums[c], xbar.columnSum(c, acts))
                << simd::armName(arm) << " column " << c;
    }
}

} // namespace
