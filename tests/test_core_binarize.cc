/**
 * @file
 * Tests for the randomized-aware binarization layers (Eq. 3/7/10).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/randomized_binarize.h"

using namespace superbnn;
using namespace superbnn::core;

namespace {

aqfp::AttenuationModel
atten()
{
    return aqfp::AttenuationModel();
}

} // namespace

TEST(AqfpBehaviorTest, DeltaVinMatchesEquationFour)
{
    const auto model = atten();
    AqfpBehavior b;
    b.crossbarSize = 36;
    b.deltaIinUa = 2.4;
    EXPECT_NEAR(b.deltaVin(model),
                2.4 / model.currentForValueOne(36.0), 1e-12);
}

TEST(RandomizedBinarizeTest, OutputsAreBipolar)
{
    Rng rng(1);
    const auto model = atten();
    RandomizedBinarize layer(AqfpBehavior{16, 2.4, 0.0}, model, rng);
    Tensor x = Tensor::randn({4, 10}, rng);
    Tensor y = layer.forward(x, true);
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_TRUE(y[i] == 1.0f || y[i] == -1.0f);
}

TEST(RandomizedBinarizeTest, ProbabilityIsErf)
{
    Rng rng(2);
    const auto model = atten();
    AqfpBehavior b{16, 2.4, 0.3};
    RandomizedBinarize layer(b, model, rng);
    const double dvin = b.deltaVin(model);
    for (double v : {-1.0, 0.0, 0.3, 1.0}) {
        const double expect = 0.5
            + 0.5 * std::erf(std::sqrt(M_PI) * (v - 0.3) / dvin);
        EXPECT_NEAR(layer.probPlusOne(v), expect, 1e-12);
    }
}

TEST(RandomizedBinarizeTest, SamplingFollowsProbability)
{
    Rng rng(3);
    const auto model = atten();
    RandomizedBinarize layer(AqfpBehavior{36, 2.4, 0.0}, model, rng);
    const float v = 0.4f;
    Tensor x({20000}, v);
    Tensor y = layer.forward(x, true);
    double plus = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i)
        plus += y[i] > 0 ? 1.0 : 0.0;
    plus /= static_cast<double>(y.size());
    EXPECT_NEAR(plus, layer.probPlusOne(v), 0.02);
}

TEST(RandomizedBinarizeTest, GradientIsErfDerivative)
{
    Rng rng(4);
    const auto model = atten();
    AqfpBehavior b{16, 2.4, 0.0};
    RandomizedBinarize layer(b, model, rng);
    const double dvin = b.deltaVin(model);
    Tensor x = Tensor::fromVector({-0.8f, -0.1f, 0.0f, 0.5f, 2.0f});
    layer.forward(x, true);
    Tensor dx = layer.backward(Tensor({5}, 1.0f));
    for (std::size_t i = 0; i < 5; ++i) {
        const double z = x[i] / dvin;
        const double expect = (2.0 / dvin) * std::exp(-M_PI * z * z);
        EXPECT_NEAR(dx[i], expect, 1e-5);
    }
}

TEST(RandomizedBinarizeTest, GradientMatchesNumericExpectation)
{
    // The backward pass is d/dx E[ab] = d/dx (2 P(x) - 1).
    Rng rng(5);
    const auto model = atten();
    RandomizedBinarize layer(AqfpBehavior{16, 2.4, 0.1}, model, rng);
    const double eps = 1e-5;
    for (double v : {-0.6, 0.1, 0.9}) {
        const double num = (2.0 * layer.probPlusOne(v + eps)
                            - 2.0 * layer.probPlusOne(v - eps))
            / (2.0 * eps);
        Tensor x({1}, static_cast<float>(v));
        layer.forward(x, true);
        const Tensor dx = layer.backward(Tensor({1}, 1.0f));
        EXPECT_NEAR(dx[0], num, 1e-4);
    }
}

TEST(RandomizedBinarizeTest, DeterministicEvalUsesExpectationSign)
{
    Rng rng(6);
    const auto model = atten();
    RandomizedBinarize layer(AqfpBehavior{16, 2.4, 0.0}, model, rng,
                             /*sample_in_eval=*/false);
    Tensor x = Tensor::fromVector({-0.4f, 0.4f});
    Tensor y = layer.forward(x, false);
    EXPECT_FLOAT_EQ(y[0], -1.0f);
    EXPECT_FLOAT_EQ(y[1], 1.0f);
    // Repeat: deterministic.
    Tensor y2 = layer.forward(x, false);
    EXPECT_TRUE(y.equals(y2));
}

TEST(RandomizedBinarizeTest, LargerCrossbarIsNoisier)
{
    // Challenge #2: the value-domain gray zone grows with Cs, so the
    // same latent value binarizes less deterministically.
    Rng rng(7);
    const auto model = atten();
    RandomizedBinarize small(AqfpBehavior{8, 2.4, 0.0}, model, rng);
    RandomizedBinarize big(AqfpBehavior{144, 2.4, 0.0}, model, rng);
    EXPECT_GT(small.probPlusOne(1.0), big.probPlusOne(1.0));
    EXPECT_LT(small.probPlusOne(-1.0), big.probPlusOne(-1.0));
}

// --- CellBinarize ---

namespace {

/** A BN layer with hand-set inference statistics. */
nn::BatchNorm
makeBn(std::size_t channels, const std::vector<float> &gamma,
       const std::vector<float> &beta, const std::vector<float> &mean,
       const std::vector<float> &var)
{
    nn::BatchNorm bn(channels);
    for (std::size_t c = 0; c < channels; ++c) {
        bn.gamma().value[c] = gamma[c];
        bn.beta().value[c] = beta[c];
    }
    bn.setRunningStats(Tensor::fromVector(mean), Tensor::fromVector(var));
    return bn;
}

} // namespace

TEST(CellBinarizeTest, ChannelWidthUsesAbsoluteSlope)
{
    Rng rng(8);
    const auto model = atten();
    auto bn = makeBn(2, {2.0f, -1.5f}, {0.0f, 0.0f}, {0.0f, 0.0f},
                     {1.0f, 4.0f});
    nn::Parameter alpha(Tensor::fromVector({0.5f, 2.0f}));
    AqfpBehavior b{16, 2.4, 0.0};
    CellBinarize layer(b, model, rng, &bn, &alpha);
    const double dvin = b.deltaVin(model);
    // |k0| = 2 * 0.5 / sqrt(1 + eps) ~ 1.
    EXPECT_NEAR(layer.channelWidth(0), 1.0 * dvin, 1e-4);
    // |k1| = |-1.5| * 2 / sqrt(4 + eps) ~ 1.5 (positive despite gamma
    // < 0: the Eq. 15 flip lives in the BN output's own sign).
    EXPECT_NEAR(layer.channelWidth(1), 1.5 * dvin, 1e-3);
}

TEST(CellBinarizeTest, MonotoneInBnOutputForEitherGammaSign)
{
    // The cell fires +1 with P > 0.5 whenever the BN output is positive
    // regardless of gamma's sign: for gamma < 0 a positive BN output
    // corresponds to a raw sum below the folded threshold, which is
    // exactly the Eq. 15 flipped decision.
    Rng rng(9);
    const auto model = atten();
    for (float gamma : {1.0f, -1.0f}) {
        auto bn = makeBn(1, {gamma}, {0.0f}, {0.0f}, {1.0f});
        nn::Parameter alpha(Tensor::fromVector({1.0f}));
        CellBinarize layer(AqfpBehavior{16, 2.4, 0.0}, model, rng, &bn,
                           &alpha);
        Tensor x({20000, 1}, 0.5f);
        Tensor y = layer.forward(x, true);
        double plus = 0.0;
        for (std::size_t i = 0; i < y.size(); ++i)
            plus += y[i] > 0 ? 1.0 : 0.0;
        plus /= static_cast<double>(y.size());
        EXPECT_GT(plus, 0.5) << "gamma " << gamma;
    }
}

TEST(CellBinarizeTest, GradientPositiveForEitherGammaSign)
{
    Rng rng(10);
    const auto model = atten();
    auto bn_pos = makeBn(1, {1.0f}, {0.0f}, {0.0f}, {1.0f});
    auto bn_neg = makeBn(1, {-1.0f}, {0.0f}, {0.0f}, {1.0f});
    nn::Parameter alpha(Tensor::fromVector({1.0f}));
    CellBinarize pos(AqfpBehavior{16, 2.4, 0.0}, model, rng, &bn_pos,
                     &alpha);
    CellBinarize neg(AqfpBehavior{16, 2.4, 0.0}, model, rng, &bn_neg,
                     &alpha);
    Tensor x({1, 1}, 0.2f);
    pos.forward(x, true);
    neg.forward(x, true);
    const Tensor gp = pos.backward(Tensor({1, 1}, 1.0f));
    const Tensor gn = neg.backward(Tensor({1, 1}, 1.0f));
    EXPECT_GT(gp[0], 0.0f);
    EXPECT_GT(gn[0], 0.0f);
}

TEST(CellBinarizeTest, SupportsConvShapedInput)
{
    Rng rng(11);
    const auto model = atten();
    auto bn = makeBn(3, {1.0f, 1.0f, 1.0f}, {0.0f, 0.0f, 0.0f},
                     {0.0f, 0.0f, 0.0f}, {1.0f, 1.0f, 1.0f});
    nn::Parameter alpha(Tensor({3}, 1.0f));
    CellBinarize layer(AqfpBehavior{16, 2.4, 0.0}, model, rng, &bn,
                       &alpha);
    Tensor x = Tensor::randn({2, 3, 4, 4}, rng);
    Tensor y = layer.forward(x, true);
    EXPECT_EQ(y.shape(), x.shape());
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_TRUE(y[i] == 1.0f || y[i] == -1.0f);
    Tensor dx = layer.backward(Tensor(x.shape(), 1.0f));
    EXPECT_EQ(dx.shape(), x.shape());
}
