/**
 * @file
 * Tests for the baseline database and Cryo-CMOS comparison models.
 */

#include <gtest/gtest.h>

#include "baselines/baseline_specs.h"
#include "baselines/cryo.h"

using namespace superbnn::baselines;

TEST(BaselineDb, Cifar10RowsPresent)
{
    const auto &rows = cifar10Baselines();
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(rows[0].name, "DDN (VGG-Small)");
    EXPECT_DOUBLE_EQ(rows[1].topsPerWatt, 82.6); // IMB
    EXPECT_DOUBLE_EQ(rows[1].accuracyPercent, 87.7);
    EXPECT_DOUBLE_EQ(rows[3].topsPerWatt, 617.0); // CMOS-BNN
}

TEST(BaselineDb, MnistRowsPresent)
{
    const auto &rows = mnistBaselines();
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_DOUBLE_EQ(rows[0].topsPerWatt, 36.6);            // SyncBNN
    EXPECT_DOUBLE_EQ(*rows[1].topsPerWattCooled, 8.1);      // RSFQ
    EXPECT_DOUBLE_EQ(*rows[2].topsPerWattCooled, 50.0);     // ERSFQ
    EXPECT_DOUBLE_EQ(rows[3].accuracyPercent, 96.9);        // SC-AQFP
}

TEST(BaselineDb, PaperSuperbnnRowsMatchTable2)
{
    const auto &rows = paperSuperbnnCifarRows();
    ASSERT_EQ(rows.size(), 5u);
    EXPECT_DOUBLE_EQ(rows[0].accuracyPercent, 91.7);
    EXPECT_DOUBLE_EQ(rows[0].topsPerWatt, 1.9e5);
    EXPECT_DOUBLE_EQ(rows[3].topsPerWatt, 6.8e6);
    EXPECT_DOUBLE_EQ(rows[4].accuracyPercent, 92.2); // ResNet-18
}

TEST(BaselineDb, SupeRbnnBeatsReRamByPaperFactor)
{
    // The headline claim: ~7.8e4x higher efficiency than the ReRAM IMB.
    const double imb = cifar10Baselines()[1].topsPerWatt;
    const double ours = paperSuperbnnCifarRows()[3].topsPerWatt;
    const double factor = ours / imb;
    EXPECT_GT(factor, 5e4);
    EXPECT_LT(factor, 1.2e5);
}

TEST(CryoCmosModel, GainAndCoolingTransforms)
{
    EXPECT_DOUBLE_EQ(CryoCmos::deviceEfficiency(100.0), 150.0);
    EXPECT_NEAR(CryoCmos::cooledEfficiency(100.0), 150.0 / 10.65,
                1e-9);
}

TEST(CryoCmosModel, CooledWorseThanRoom)
{
    // With 9.65x cooling overhead, 77K operation loses to room
    // temperature on total energy despite the 1.5x device gain.
    EXPECT_LT(CryoCmos::cooledEfficiency(617.0), 617.0);
}

TEST(AqfpScaling, InverseFrequency)
{
    const double at5 = 2.0e5;
    EXPECT_NEAR(aqfpEfficiencyAt(at5, 1.0, false), 1.0e6, 1e-3);
    EXPECT_NEAR(aqfpEfficiencyAt(at5, 10.0, false), 1.0e5, 1e-3);
    EXPECT_NEAR(aqfpEfficiencyAt(at5, 5.0, true), at5 / 400.0, 1e-9);
}

TEST(Fig12Series, ContainsAllCurves)
{
    const std::vector<double> freqs = {0.1, 0.5, 1.0, 5.0, 10.0};
    const auto curves = fig12Series(freqs, 2.0e5);
    // 3 anchors x 3 variants + ours x 2 = 11 curves.
    EXPECT_EQ(curves.size(), 11u);
    for (const auto &c : curves) {
        EXPECT_EQ(c.frequencyGhz.size(), freqs.size());
        EXPECT_EQ(c.topsPerWatt.size(), freqs.size());
    }
}

TEST(Fig12Series, OursDominatesByOrdersOfMagnitude)
{
    // Section 6.5: ~4 orders of magnitude over Cryo-CMOS device-only,
    // 2-3 orders with cooling.
    const std::vector<double> freqs = {1.0};
    const auto curves = fig12Series(freqs, 2.0e5);
    double best_cryo_device = 0.0, ours_device = 0.0, ours_cooled = 0.0;
    double best_cryo_cooled = 0.0;
    for (const auto &c : curves) {
        if (c.name.rfind("Cryo-CMOS (77K, w/o", 0) == 0)
            best_cryo_device =
                std::max(best_cryo_device, c.topsPerWatt[0]);
        if (c.name.rfind("Cryo-CMOS (77K, w/", 0) == 0
            && c.name.find("w/ cooling") != std::string::npos)
            best_cryo_cooled =
                std::max(best_cryo_cooled, c.topsPerWatt[0]);
        if (c.name == "Ours (4K, w/o cooling)")
            ours_device = c.topsPerWatt[0];
        if (c.name == "Ours (4K, w/ cooling)")
            ours_cooled = c.topsPerWatt[0];
    }
    EXPECT_GT(ours_device / best_cryo_device, 1e3);
    EXPECT_GT(ours_cooled / best_cryo_cooled, 1e1);
}

TEST(Fig12Series, OursDecreasesWithFrequency)
{
    const std::vector<double> freqs = {0.1, 1.0, 10.0};
    const auto curves = fig12Series(freqs, 2.0e5);
    for (const auto &c : curves) {
        if (c.name.rfind("Ours", 0) == 0) {
            EXPECT_GT(c.topsPerWatt[0], c.topsPerWatt[1]);
            EXPECT_GT(c.topsPerWatt[1], c.topsPerWatt[2]);
        }
    }
}

TEST(Fig12Anchors, HaveProvenance)
{
    for (const auto &a : fig12CmosAnchors()) {
        EXPECT_FALSE(a.provenance.empty());
        EXPECT_GT(a.refTopsPerWatt, 0.0);
        EXPECT_GT(a.refFrequencyGhz, 0.0);
    }
}
