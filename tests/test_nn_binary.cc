/**
 * @file
 * Tests for the binary (XNOR-Net style) layers and the ReCU weight
 * rectified clamp.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "nn/binary_conv.h"
#include "nn/binary_linear.h"
#include "nn/recu.h"
#include "tensor/tensor_ops.h"

using namespace superbnn;
using namespace superbnn::nn;

TEST(BinaryLinear, ForwardUsesSignedWeightsTimesAlpha)
{
    Rng rng(1);
    BinaryLinear lin(3, 2, rng);
    lin.weight().value =
        Tensor::fromVector({0.5f, -0.2f, 0.9f, -0.7f, 0.1f, -0.4f})
            .reshaped({2, 3});
    lin.alpha().value = Tensor::fromVector({2.0f, 3.0f});
    Tensor x = Tensor::fromVector({1.0f, -1.0f, 1.0f}).reshaped({1, 3});
    Tensor y = lin.forward(x, false);
    // Row 0 signs: +,-,+ -> dot = 1+1+1 = 3; times alpha 2 = 6.
    EXPECT_FLOAT_EQ(y.at(0, 0), 6.0f);
    // Row 1 signs: -,+,- -> dot = -1-1-1 = -3; times alpha 3 = -9.
    EXPECT_FLOAT_EQ(y.at(0, 1), -9.0f);
}

TEST(BinaryLinear, SignedWeightsAreBipolar)
{
    Rng rng(2);
    BinaryLinear lin(10, 6, rng);
    Tensor wb = lin.signedWeights();
    for (std::size_t i = 0; i < wb.size(); ++i)
        EXPECT_TRUE(wb[i] == 1.0f || wb[i] == -1.0f);
}

TEST(BinaryLinear, AlphaInitializedToMeanAbsWeight)
{
    Rng rng(3);
    BinaryLinear lin(50, 4, rng);
    for (std::size_t o = 0; o < 4; ++o) {
        double acc = 0.0;
        for (std::size_t i = 0; i < 50; ++i)
            acc += std::fabs(lin.weight().value.at(o, i));
        EXPECT_NEAR(lin.alpha().value[o], acc / 50.0, 1e-5);
    }
}

TEST(BinaryLinear, SteMasksOutlierWeights)
{
    Rng rng(4);
    BinaryLinear lin(2, 1, rng);
    lin.weight().value = Tensor::fromVector({0.5f, 2.0f}).reshaped({1, 2});
    lin.alpha().value = Tensor::fromVector({1.0f});
    Tensor x = Tensor::fromVector({1.0f, 1.0f}).reshaped({1, 2});
    lin.forward(x, true);
    lin.weight().zeroGrad();
    lin.backward(Tensor({1, 1}, 1.0f));
    EXPECT_NE(lin.weight().grad[0], 0.0f); // |w| <= 1: gradient passes
    EXPECT_EQ(lin.weight().grad[1], 0.0f); // |w| > 1: clipped
}

TEST(BinaryLinear, AlphaGradientMatchesNumericUpToFanInScale)
{
    // The stored alpha gradient is the true gradient divided by the
    // fan-in (per-parameter preconditioning for plain SGD).
    Rng rng(5);
    BinaryLinear lin(4, 3, rng);
    Tensor x = Tensor::randn({2, 4}, rng);
    Tensor probe = Tensor::randn({2, 3}, rng);
    lin.alpha().zeroGrad();
    lin.forward(x, true);
    lin.backward(probe);
    const float eps = 1e-3f;
    for (std::size_t j = 0; j < 3; ++j) {
        const float keep = lin.alpha().value[j];
        lin.alpha().value[j] = keep + eps;
        Tensor yp = lin.forward(x, false);
        lin.alpha().value[j] = keep - eps;
        Tensor ym = lin.forward(x, false);
        lin.alpha().value[j] = keep;
        double num = 0.0;
        for (std::size_t i = 0; i < yp.size(); ++i)
            num += (static_cast<double>(yp[i]) - ym[i]) * probe[i];
        num /= 2.0 * eps;
        EXPECT_NEAR(lin.alpha().grad[j], num / 4.0, 1e-2);
    }
}

TEST(BinaryLinear, InputGradientUsesBinaryWeightsAndAlpha)
{
    Rng rng(6);
    BinaryLinear lin(3, 2, rng);
    Tensor x = Tensor::randn({1, 3}, rng);
    lin.forward(x, true);
    Tensor g({1, 2});
    g.at(0, 0) = 1.0f;
    Tensor dx = lin.backward(g);
    const Tensor wb = lin.signedWeights();
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(dx.at(0, i), lin.alpha().value[0] * wb.at(0, i),
                    1e-5);
}

TEST(BinaryConv, MatchesBinaryLinearOn1x1Patches)
{
    // A 1x1-image conv degenerates to a linear layer on channels.
    Rng rng(7);
    BinaryConv2d conv(4, 3, 1, 1, 0, rng);
    Tensor x = Tensor::randn({2, 4, 1, 1}, rng);
    Tensor y = conv.forward(x, false);
    const Tensor wb = conv.signedWeightMatrix();
    for (std::size_t n = 0; n < 2; ++n) {
        for (std::size_t o = 0; o < 3; ++o) {
            double acc = 0.0;
            for (std::size_t c = 0; c < 4; ++c)
                acc += x.at(n, c, 0, 0) * wb.at(o, c);
            acc *= conv.alpha().value[o];
            EXPECT_NEAR(y.at(n, o, 0, 0), acc, 1e-4);
        }
    }
}

TEST(BinaryConv, SignedWeightMatrixShape)
{
    Rng rng(8);
    BinaryConv2d conv(3, 5, 3, 1, 1, rng);
    Tensor wb = conv.signedWeightMatrix();
    EXPECT_EQ(wb.dim(0), 5u);
    EXPECT_EQ(wb.dim(1), 27u);
}

TEST(BinaryConv, InputGradientMatchesNumeric)
{
    Rng rng(9);
    BinaryConv2d conv(2, 2, 3, 1, 1, rng);
    Tensor x = Tensor::randn({1, 2, 4, 4}, rng);
    Tensor out = conv.forward(x, true);
    Tensor probe = Tensor::randn(out.shape(), rng);
    Tensor dx = conv.backward(probe);
    const float eps = 1e-2f;
    for (std::size_t i = 0; i < 16; ++i) {
        Tensor xp = x, xm = x;
        xp[i] += eps;
        xm[i] -= eps;
        // Keep away from sign discontinuities of the input? The conv
        // binarizes only weights, not inputs, so the map is linear in x.
        Tensor op = conv.forward(xp, false);
        Tensor om = conv.forward(xm, false);
        double num = 0.0;
        for (std::size_t j = 0; j < op.size(); ++j)
            num += (static_cast<double>(op[j]) - om[j]) * probe[j];
        num /= 2.0 * eps;
        EXPECT_NEAR(dx[i], num, 5e-2);
    }
}

TEST(BinaryConv, AlphaGradientAccumulates)
{
    Rng rng(10);
    BinaryConv2d conv(1, 1, 3, 1, 1, rng);
    Tensor x = Tensor::randn({1, 1, 4, 4}, rng);
    conv.alpha().zeroGrad();
    conv.forward(x, true);
    conv.backward(Tensor({1, 1, 4, 4}, 1.0f));
    EXPECT_NE(conv.alpha().grad[0], 0.0f);
}

// --- ReCU ---

TEST(ReCU, QuantileOfKnownVector)
{
    Tensor v = Tensor::fromVector({1, 2, 3, 4, 5});
    EXPECT_FLOAT_EQ(quantile(v, 0.0), 1.0f);
    EXPECT_FLOAT_EQ(quantile(v, 1.0), 5.0f);
    EXPECT_FLOAT_EQ(quantile(v, 0.5), 3.0f);
    EXPECT_FLOAT_EQ(quantile(v, 0.25), 2.0f);
}

TEST(ReCU, ClampMovesOutliersInward)
{
    Rng rng(11);
    Tensor w = Tensor::randn({1000}, rng);
    w[0] = 50.0f;
    w[1] = -50.0f;
    const auto [lo, hi] = applyReCU(w, 0.95);
    EXPECT_LE(w.maxValue(), hi);
    EXPECT_GE(w.minValue(), lo);
    EXPECT_LT(w.maxValue(), 50.0f);
    EXPECT_GT(w.minValue(), -50.0f);
}

TEST(ReCU, InteriorValuesUntouched)
{
    Tensor w = Tensor::fromVector({-0.1f, 0.0f, 0.1f, -3.0f, 3.0f});
    Tensor before = w;
    applyReCU(w, 0.8);
    // The middle three elements lie inside the quantile band.
    EXPECT_FLOAT_EQ(w[0], before[0]);
    EXPECT_FLOAT_EQ(w[1], before[1]);
    EXPECT_FLOAT_EQ(w[2], before[2]);
    EXPECT_LT(w[4], 3.0f);
}

TEST(ReCU, TauOneIsNoop)
{
    Rng rng(12);
    Tensor w = Tensor::randn({100}, rng);
    Tensor before = w;
    applyReCU(w, 1.0);
    EXPECT_TRUE(w.allClose(before));
}

TEST(ReCU, ScheduleRampsFromStartToEnd)
{
    ReCUSchedule sched(0.85, 0.99);
    EXPECT_DOUBLE_EQ(sched.tauAt(0, 100), 0.85);
    EXPECT_NEAR(sched.tauAt(99, 100), 0.99, 1e-12);
    EXPECT_GT(sched.tauAt(50, 100), 0.85);
    EXPECT_LT(sched.tauAt(50, 100), 0.99);
}

class ReCUQuantileSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(ReCUQuantileSweep, ClampBoundsMatchQuantiles)
{
    Rng rng(13);
    Tensor w = Tensor::randn({5000}, rng);
    const double tau = GetParam();
    const float expect_hi = quantile(w, tau);
    const float expect_lo = quantile(w, 1.0 - tau);
    const auto [lo, hi] = applyReCU(w, tau);
    EXPECT_FLOAT_EQ(hi, expect_hi);
    EXPECT_FLOAT_EQ(lo, expect_lo);
    // Roughly 2*(1-tau) of the mass gets clamped on a smooth dist.
    std::size_t at_bounds = 0;
    for (std::size_t i = 0; i < w.size(); ++i)
        if (w[i] == lo || w[i] == hi)
            ++at_bounds;
    const double frac = static_cast<double>(at_bounds) / w.size();
    EXPECT_NEAR(frac, 2.0 * (1.0 - tau), 0.02);
}

INSTANTIATE_TEST_SUITE_P(Taus, ReCUQuantileSweep,
                         ::testing::Values(0.85, 0.9, 0.95, 0.99));
