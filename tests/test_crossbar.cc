/**
 * @file
 * Tests for the crossbar simulator: LiM cells, column summation with
 * attenuation, neurons, multi-tile mapping and the tile executor.
 */

#include <gtest/gtest.h>

#include "crossbar/crossbar_array.h"
#include "crossbar/lim_cell.h"
#include "crossbar/mapper.h"
#include "crossbar/tile_executor.h"
#include "tensor/tensor_ops.h"

using namespace superbnn;
using namespace superbnn::crossbar;

namespace {

/// A gray-zone so narrow the hardware is effectively deterministic.
constexpr double kTinyGrayZone = 1e-6;

aqfp::AttenuationModel
atten()
{
    return aqfp::AttenuationModel();
}

Tensor
randomSignedMatrix(std::size_t out, std::size_t in, Rng &rng)
{
    Tensor w({out, in});
    for (std::size_t i = 0; i < w.size(); ++i)
        w[i] = rng.bernoulli(0.5) ? 1.0f : -1.0f;
    return w;
}

} // namespace

TEST(LimCellTest, XnorMultiplication)
{
    LimCell cell;
    cell.program(1);
    EXPECT_EQ(cell.multiply(1), 1);
    EXPECT_EQ(cell.multiply(-1), -1);
    cell.program(-1);
    EXPECT_EQ(cell.multiply(1), -1);
    EXPECT_EQ(cell.multiply(-1), 1);
}

TEST(LimCellTest, InactiveAndPaddingContributeNothing)
{
    LimCell cell;
    EXPECT_FALSE(cell.active());
    EXPECT_EQ(cell.multiply(1), 0);
    cell.program(1);
    EXPECT_EQ(cell.multiply(0), 0); // undriven padding row
    cell.clear();
    EXPECT_EQ(cell.multiply(-1), 0);
}

TEST(CrossbarArrayTest, ColumnSumIsDotProduct)
{
    CrossbarArray xbar(4, atten(), 2.4);
    // Column 0 weights: +1 -1 +1 -1.
    xbar.programCell(0, 0, 1);
    xbar.programCell(1, 0, -1);
    xbar.programCell(2, 0, 1);
    xbar.programCell(3, 0, -1);
    EXPECT_EQ(xbar.columnSum(0, {1, 1, 1, 1}), 0);
    EXPECT_EQ(xbar.columnSum(0, {1, -1, 1, -1}), 4);
    EXPECT_EQ(xbar.columnSum(0, {-1, 1, -1, 1}), -4);
}

TEST(CrossbarArrayTest, ColumnCurrentUsesAttenuatedUnit)
{
    const auto model = atten();
    CrossbarArray xbar(8, model, 2.4);
    xbar.programCell(0, 0, 1);
    const double i1 = model.currentForValueOne(8.0);
    EXPECT_NEAR(xbar.unitCurrentUa(), i1, 1e-12);
    EXPECT_NEAR(xbar.columnCurrent(0, {1}), i1, 1e-12);
}

TEST(CrossbarArrayTest, LargerArrayHasSmallerUnitCurrent)
{
    const auto model = atten();
    CrossbarArray small(4, model, 2.4);
    CrossbarArray big(72, model, 2.4);
    EXPECT_GT(small.unitCurrentUa(), big.unitCurrentUa());
}

TEST(CrossbarArrayTest, DeterministicSignWithTinyGrayZone)
{
    Rng rng(1);
    CrossbarArray xbar(4, atten(), kTinyGrayZone);
    std::vector<std::vector<int>> w = {
        {1, -1}, {1, -1}, {1, 1}, {1, 1}};
    xbar.programWeights(w);
    const auto out = xbar.evaluate({1, 1, 1, 1}, rng);
    EXPECT_EQ(out[0], 1);   // column sum +4
    EXPECT_EQ(out[1], 1);   // column sum 0 -> P=0.5 boundary, sign(0)=+1
}

TEST(CrossbarArrayTest, ThresholdValueScalesByUnitCurrent)
{
    CrossbarArray xbar(4, atten(), kTinyGrayZone);
    std::vector<std::vector<int>> w = {{1}, {1}, {1}, {1}};
    xbar.programWeights(w);
    Rng rng(2);
    // Sum is +4; threshold of 5 units pushes the decision negative.
    xbar.setColumnThresholdValue(0, 5.0);
    EXPECT_EQ(xbar.evaluate({1, 1, 1, 1}, rng)[0], -1);
    xbar.setColumnThresholdValue(0, 3.0);
    EXPECT_EQ(xbar.evaluate({1, 1, 1, 1}, rng)[0], 1);
}

TEST(CrossbarArrayTest, ProbabilitiesMatchGrayZoneModel)
{
    const auto model = atten();
    CrossbarArray xbar(4, model, 2.4);
    std::vector<std::vector<int>> w = {{1}, {1}, {1}, {1}};
    xbar.programWeights(w);
    const aqfp::GrayZoneModel gz(2.4, 0.0);
    const auto probs = xbar.columnProbabilities({1, 1, -1, 1});
    const double current = 2.0 * model.currentForValueOne(4.0);
    EXPECT_NEAR(probs[0], gz.probOne(current), 1e-12);
}

TEST(CrossbarArrayTest, ObserveWindowLength)
{
    Rng rng(3);
    CrossbarArray xbar(4, atten(), 2.4);
    const auto streams = xbar.observe({1, 1, 1, 1}, 13, rng);
    ASSERT_EQ(streams.size(), 4u);
    for (const auto &s : streams)
        EXPECT_EQ(s.length(), 13u);
}

// --- mapper ---

TEST(MapperTest, GridDimensions)
{
    Rng rng(4);
    const CrossbarMapper mapper(16, atten(), 2.4);
    const Tensor w = randomSignedMatrix(20, 50, rng);
    const MappedLayer layer = mapper.map(w);
    EXPECT_EQ(layer.rowTiles, 4u);  // ceil(50/16)
    EXPECT_EQ(layer.colTiles, 2u);  // ceil(20/16)
    EXPECT_EQ(layer.tileCount(), 8u);
    EXPECT_EQ(layer.fanIn, 50u);
    EXPECT_EQ(layer.fanOut, 20u);
}

TEST(MapperTest, TiledLatentSumsMatchFullMatmul)
{
    Rng rng(5);
    const CrossbarMapper mapper(8, atten(), kTinyGrayZone);
    const Tensor w = randomSignedMatrix(12, 30, rng);
    MappedLayer layer = mapper.map(w);
    const TileExecutor exec(1);

    std::vector<int> acts(30);
    for (auto &a : acts)
        a = rng.bernoulli(0.5) ? 1 : -1;

    const auto sums = exec.latentSums(layer, acts);
    for (std::size_t o = 0; o < 12; ++o) {
        double expect = 0.0;
        for (std::size_t i = 0; i < 30; ++i)
            expect += w.at(o, i) * acts[i];
        EXPECT_NEAR(sums[o], expect, 1e-9) << "output " << o;
    }
}

TEST(MapperTest, ThresholdDividedEvenlyAcrossRowTiles)
{
    Rng rng(6);
    const CrossbarMapper mapper(8, atten(), kTinyGrayZone);
    const Tensor w = randomSignedMatrix(4, 24, rng);
    MappedLayer layer = mapper.map(w);
    CrossbarMapper::setThresholds(layer, {3.0, -6.0, 0.0, 9.0});
    ASSERT_EQ(layer.rowTiles, 3u);
    const double unit = layer.tile(0, 0).unitCurrentUa();
    for (std::size_t rt = 0; rt < 3; ++rt) {
        EXPECT_NEAR(layer.tile(rt, 0).neuron(1).ithUa(),
                    -6.0 / 3.0 * unit, 1e-9);
        EXPECT_NEAR(layer.tile(rt, 0).neuron(3).ithUa(),
                    9.0 / 3.0 * unit, 1e-9);
    }
    // Thresholds shift the latent sums.
    const TileExecutor exec(1);
    std::vector<int> acts(24, 1);
    const auto sums = exec.latentSums(layer, acts);
    double raw1 = 0.0;
    for (std::size_t i = 0; i < 24; ++i)
        raw1 += w.at(1, i);
    EXPECT_NEAR(sums[1], raw1 + 6.0, 1e-9);
}

// --- executor ---

TEST(ExecutorTest, DeterministicForwardMatchesSignSingleTile)
{
    // With one row tile (fan-in <= Cs) and a vanishing gray zone, the
    // hardware decision is exactly the sign of the latent sum.
    Rng rng(7);
    const CrossbarMapper mapper(8, atten(), kTinyGrayZone);
    const Tensor w = randomSignedMatrix(10, 8, rng);
    MappedLayer layer = mapper.map(w);
    ASSERT_EQ(layer.rowTiles, 1u);
    const TileExecutor exec(4, true);

    for (int trial = 0; trial < 10; ++trial) {
        std::vector<int> acts(8);
        for (auto &a : acts)
            a = rng.bernoulli(0.5) ? 1 : -1;
        const auto sums = exec.latentSums(layer, acts);
        const auto outs = exec.forward(layer, acts, rng);
        for (std::size_t o = 0; o < 10; ++o) {
            if (sums[o] == 0.0)
                continue; // at zero the neuron sits at P = 0.5
            EXPECT_EQ(outs[o], sums[o] > 0 ? 1 : -1)
                << "output " << o << " sum " << sums[o];
        }
    }
}

TEST(ExecutorTest, MultiTileDeterministicAggregatesTileSigns)
{
    // Across multiple row tiles each crossbar emits only its column's
    // *sign*; with a vanishing gray zone the SC accumulation therefore
    // decides by the majority of tile signs, not the total sum. (The
    // finite gray zone is what restores magnitude information through
    // the firing probability — the paper's key observation about SC
    // compatibility.)
    Rng rng(77);
    const CrossbarMapper mapper(8, atten(), kTinyGrayZone);
    const Tensor w = randomSignedMatrix(6, 24, rng);
    MappedLayer layer = mapper.map(w);
    ASSERT_EQ(layer.rowTiles, 3u);
    const TileExecutor exec(4, true);

    std::vector<int> acts(24);
    for (auto &a : acts)
        a = rng.bernoulli(0.5) ? 1 : -1;

    // Reference: per-tile signs.
    std::vector<int> sign_sum(6, 0);
    std::vector<bool> any_tie(6, false);
    for (std::size_t o = 0; o < 6; ++o) {
        const std::size_t ct = o / layer.cs;
        const std::size_t local = o % layer.cs;
        for (std::size_t rt = 0; rt < 3; ++rt) {
            std::vector<int> slice(acts.begin() + rt * 8,
                                   acts.begin() + rt * 8 + 8);
            const int s = layer.tile(rt, ct).columnSum(local, slice);
            if (s == 0)
                any_tie[o] = true;
            sign_sum[o] += (s >= 0) ? 1 : -1;
        }
    }
    const auto outs = exec.forward(layer, acts, rng);
    for (std::size_t o = 0; o < 6; ++o) {
        if (any_tie[o] || sign_sum[o] == 0)
            continue;
        EXPECT_EQ(outs[o], sign_sum[o] > 0 ? 1 : -1)
            << "output " << o;
    }
}

TEST(ExecutorTest, StochasticForwardTracksLatentSign)
{
    Rng rng(8);
    const CrossbarMapper mapper(8, atten(), 2.4);
    const Tensor w = randomSignedMatrix(6, 16, rng);
    MappedLayer layer = mapper.map(w);
    const TileExecutor exec(16, true);

    std::vector<int> acts(16);
    for (auto &a : acts)
        a = rng.bernoulli(0.5) ? 1 : -1;
    const auto sums = exec.latentSums(layer, acts);

    const int trials = 120;
    std::vector<int> agree(6, 0);
    for (int t = 0; t < trials; ++t) {
        const auto outs = exec.forward(layer, acts, rng);
        for (std::size_t o = 0; o < 6; ++o)
            if ((sums[o] >= 0) == (outs[o] == 1))
                ++agree[o];
    }
    for (std::size_t o = 0; o < 6; ++o) {
        if (std::abs(sums[o]) >= 4.0) {
            EXPECT_GT(agree[o], trials * 3 / 4)
                << "large-margin output " << o
                << " should usually match, sum=" << sums[o];
        }
    }
}

TEST(ExecutorTest, DecodedHeadTracksLatentOrdering)
{
    Rng rng(9);
    const CrossbarMapper mapper(8, atten(), 2.4);
    const Tensor w = randomSignedMatrix(5, 32, rng);
    MappedLayer layer = mapper.map(w);
    const TileExecutor exec(64, true);

    std::vector<int> acts(32);
    for (auto &a : acts)
        a = rng.bernoulli(0.5) ? 1 : -1;
    const auto sums = exec.latentSums(layer, acts);

    // Average many decoded readouts; ordering of clearly separated
    // outputs must match the latent ordering.
    std::vector<double> mean(5, 0.0);
    const int trials = 60;
    for (int t = 0; t < trials; ++t) {
        const auto dec = exec.forwardDecoded(layer, acts, rng);
        for (std::size_t o = 0; o < 5; ++o)
            mean[o] += dec[o];
    }
    for (auto &m : mean)
        m /= trials;
    for (std::size_t a = 0; a < 5; ++a)
        for (std::size_t b = 0; b < 5; ++b)
            if (sums[a] > sums[b] + 6.0)
                EXPECT_GT(mean[a], mean[b])
                    << "latent " << sums[a] << " vs " << sums[b];
}

TEST(ExecutorTest, SingleTileProbabilities)
{
    Rng rng(10);
    const CrossbarMapper mapper(16, atten(), 2.4);
    const Tensor w = randomSignedMatrix(4, 10, rng);
    MappedLayer layer = mapper.map(w);
    ASSERT_EQ(layer.rowTiles, 1u);
    const TileExecutor exec(1);
    std::vector<int> acts(10, 1);
    const auto probs = exec.singleTileProbabilities(layer, acts);
    for (double p : probs) {
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
    }
}

class ExecutorWindowSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(ExecutorWindowSweep, ErrorRateShrinksWithWindow)
{
    // The probability that the hardware decision disagrees with the
    // ideal sign decreases as the observation window L grows (the
    // Fig. 10 mechanism at layer level).
    const std::size_t window = GetParam();
    Rng rng(11);
    const CrossbarMapper mapper(8, atten(), 2.4);
    const Tensor w = randomSignedMatrix(8, 24, rng);
    MappedLayer layer = mapper.map(w);
    const TileExecutor exec(window, true);

    std::vector<int> acts(24);
    for (auto &a : acts)
        a = rng.bernoulli(0.5) ? 1 : -1;
    const auto sums = exec.latentSums(layer, acts);

    int mismatches = 0, decided = 0;
    const int trials = 150;
    for (int t = 0; t < trials; ++t) {
        const auto outs = exec.forward(layer, acts, rng);
        for (std::size_t o = 0; o < 8; ++o) {
            if (std::abs(sums[o]) < 2.0)
                continue;
            ++decided;
            if ((sums[o] > 0) != (outs[o] == 1))
                ++mismatches;
        }
    }
    if (decided > 0) {
        const double rate =
            static_cast<double>(mismatches) / decided;
        // Generous bound that tightens with the window.
        const double bound = window >= 32 ? 0.10 :
            window >= 8 ? 0.25 : 0.45;
        EXPECT_LT(rate, bound) << "window " << window;
    }
}

INSTANTIATE_TEST_SUITE_P(Windows, ExecutorWindowSweep,
                         ::testing::Values(1, 8, 32));
