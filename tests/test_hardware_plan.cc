/**
 * @file
 * Per-layer HardwarePlan contract tests: construction validation
 * (field-naming std::invalid_argument instead of downstream UB), the
 * uniform-plan adapter's bit-exactness against the legacy single-config
 * path, heterogeneous determinism across thread counts and SIMD arms,
 * per-layer ledger draw accounting (Cs_l * L_l per tile observation),
 * named-cache sharing across plans differing in one layer, and the
 * explorer's coordinate-descent guarantee that a plan never costs more
 * than its homogeneous seed (strictly less on the autotune MNIST
 * space — the bench's headline delta).
 */

#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "aqfp/energy.h"
#include "core/explorer.h"
#include "core/hardware_eval.h"
#include "core/models.h"
#include "core/scenario_sweep.h"
#include "crossbar/model_cache.h"
#include "simd_test_util.h"
#include "tensor/random.h"

using namespace superbnn;
using namespace superbnn::core;

namespace {

/** Deterministic untrained 3-cell MLP (2 hidden layers + head). */
RandomizedMlp
testMlp()
{
    Rng rng(23);
    return RandomizedMlp(48, std::vector<std::size_t>{32, 24}, 10,
                         AqfpBehavior{16, 2.4, 0.0},
                         aqfp::AttenuationModel(), rng);
}

/** Deterministic +/-1 input batch for the 48-input test MLP. */
std::vector<Tensor>
testBatch(std::size_t count)
{
    Rng rng(29);
    std::vector<Tensor> batch;
    for (std::size_t b = 0; b < count; ++b) {
        Tensor s({1, 48});
        for (std::size_t i = 0; i < s.size(); ++i)
            s[i] = rng.bernoulli(0.5) ? 1.0f : -1.0f;
        batch.push_back(std::move(s));
    }
    return batch;
}

std::vector<std::uint64_t>
testSeeds(std::size_t count)
{
    std::vector<std::uint64_t> seeds;
    for (std::size_t b = 0; b < count; ++b)
        seeds.push_back(0xABC0 + 31 * b);
    return seeds;
}

/** The mixed plan the determinism tests drive (one point per cell). */
HardwarePlan
mixedPlan()
{
    return HardwarePlan(std::vector<LayerHardwareConfig>{
        {8, 4, 1.6}, {16, 8, 2.4}, {36, 16, 3.2}});
}

} // namespace

TEST(HardwarePlanValidation, ConfigFieldsThrowByName)
{
    HardwareConfig cfg;
    EXPECT_NO_THROW(cfg.validate());

    cfg.crossbarSize = 0;
    EXPECT_THROW(
        {
            try {
                cfg.validate();
            } catch (const std::invalid_argument &e) {
                EXPECT_NE(std::string(e.what()).find("crossbarSize"),
                          std::string::npos);
                throw;
            }
        },
        std::invalid_argument);

    cfg = HardwareConfig{};
    cfg.window = 0;
    EXPECT_THROW(
        {
            try {
                cfg.validate();
            } catch (const std::invalid_argument &e) {
                EXPECT_NE(std::string(e.what()).find("window"),
                          std::string::npos);
                throw;
            }
        },
        std::invalid_argument);

    cfg = HardwareConfig{};
    cfg.evalBatch = 0;
    EXPECT_THROW(
        {
            try {
                cfg.validate();
            } catch (const std::invalid_argument &e) {
                EXPECT_NE(std::string(e.what()).find("evalBatch"),
                          std::string::npos);
                throw;
            }
        },
        std::invalid_argument);

    for (const double bad :
         {0.0, -2.4, std::numeric_limits<double>::quiet_NaN(),
          std::numeric_limits<double>::infinity()}) {
        cfg = HardwareConfig{};
        cfg.deltaIinUa = bad;
        EXPECT_THROW(
            {
                try {
                    cfg.validate();
                } catch (const std::invalid_argument &e) {
                    EXPECT_NE(
                        std::string(e.what()).find("deltaIinUa"),
                        std::string::npos);
                    throw;
                }
            },
            std::invalid_argument);
    }
}

TEST(HardwarePlanValidation, EvaluatorAndSweepRejectInvalidConfigs)
{
    HardwareConfig bad;
    bad.window = 0;
    EXPECT_THROW(
        HardwareEvaluator(aqfp::AttenuationModel(), bad),
        std::invalid_argument);
    EXPECT_THROW(HardwarePlan{bad}, std::invalid_argument);
}

TEST(HardwarePlanValidation, PlanConstructionValidates)
{
    // Empty entry list.
    EXPECT_THROW(HardwarePlan(std::vector<LayerHardwareConfig>{}),
                 std::invalid_argument);
    // Invalid entry (names the per-layer type).
    EXPECT_THROW(
        {
            try {
                HardwarePlan(std::vector<LayerHardwareConfig>{
                    {16, 0, 2.4}});
            } catch (const std::invalid_argument &e) {
                EXPECT_NE(std::string(e.what()).find("window"),
                          std::string::npos);
                throw;
            }
        },
        std::invalid_argument);
    // Invalid shared knob from the shared config.
    HardwareConfig shared;
    shared.evalBatch = 0;
    EXPECT_THROW(HardwarePlan(
                     std::vector<LayerHardwareConfig>{{16, 8, 2.4}},
                     shared),
                 std::invalid_argument);
}

TEST(HardwarePlanValidation, ResolveBroadcastsAndMatchesExactly)
{
    const HardwarePlan uniform{HardwareConfig{}};
    EXPECT_TRUE(uniform.uniform());
    EXPECT_EQ(uniform.resolve(4).size(), 4u);
    EXPECT_EQ(uniform.resolve(4)[3], uniform.layers[0]);
    EXPECT_THROW(uniform.resolve(0), std::invalid_argument);

    const HardwarePlan plan = mixedPlan();
    EXPECT_FALSE(plan.uniform());
    EXPECT_EQ(plan.resolve(3), plan.layers);
    // Mismatch names both counts.
    EXPECT_THROW(
        {
            try {
                plan.resolve(5);
            } catch (const std::invalid_argument &e) {
                const std::string msg = e.what();
                EXPECT_NE(msg.find("3"), std::string::npos);
                EXPECT_NE(msg.find("5"), std::string::npos);
                throw;
            }
        },
        std::invalid_argument);

    // A mapped model with the wrong cell count throws at map time.
    const RandomizedMlp mlp = testMlp(); // 3 cells
    const HardwarePlan two(std::vector<LayerHardwareConfig>{
        {8, 4, 1.6}, {16, 8, 2.4}});
    HardwareEvaluator eval(aqfp::AttenuationModel(), two);
    EXPECT_THROW(eval.mapMlp(mlp), std::invalid_argument);
}

TEST(HardwarePlanValidation, RepresentativeIsEntryZeroPlusKnobs)
{
    HardwarePlan plan = mixedPlan();
    plan.evalBatch = 5;
    plan.threads = 1;
    const HardwareConfig repr = plan.representative();
    EXPECT_EQ(repr.crossbarSize, 8u);
    EXPECT_EQ(repr.window, 4u);
    EXPECT_EQ(repr.deltaIinUa, 1.6);
    EXPECT_EQ(repr.evalBatch, 5u);
    EXPECT_EQ(repr.threads, 1u);
}

TEST(HardwarePlanUniform, BitIdenticalToLegacyConfigPath)
{
    const RandomizedMlp mlp = testMlp();
    const HardwareConfig cfg{16, 8, 2.4, false, 0.25, 0, 8};
    const std::vector<Tensor> batch = testBatch(4);
    const std::vector<std::uint64_t> seeds = testSeeds(4);

    HardwareEvaluator legacy(aqfp::AttenuationModel(), cfg);
    legacy.mapMlp(mlp);
    HardwareEvaluator uniform{aqfp::AttenuationModel(),
                              HardwarePlan(cfg)};
    uniform.mapMlp(mlp);

    // Scores: bit-exact, including the shared-Rng batched path.
    EXPECT_EQ(legacy.classScoresSeeded(batch, seeds),
              uniform.classScoresSeeded(batch, seeds));
    Rng ra(77), rb(77);
    EXPECT_EQ(legacy.classScores(batch, ra),
              uniform.classScores(batch, rb));

    // Ledger counts: identical observed activity.
    EXPECT_EQ(aqfp::toJson(legacy.totalLedgerCounts()),
              aqfp::toJson(uniform.totalLedgerCounts()));

    // Energy reports: every measured/analytic component bit-exact.
    const auto lrep = legacy.energyReports();
    const auto urep = uniform.energyReports();
    ASSERT_EQ(lrep.size(), urep.size());
    for (std::size_t i = 0; i < lrep.size(); ++i) {
        EXPECT_EQ(lrep[i].name, urep[i].name);
        EXPECT_EQ(lrep[i].measuredValid, urep[i].measuredValid);
        EXPECT_EQ(lrep[i].measured.totalEnergyAj,
                  urep[i].measured.totalEnergyAj);
        EXPECT_EQ(lrep[i].measured.cyclesPerImage,
                  urep[i].measured.cyclesPerImage);
        EXPECT_EQ(lrep[i].analytic.totalEnergyAj,
                  urep[i].analytic.totalEnergyAj);
        EXPECT_EQ(lrep[i].analytic.totalJj, urep[i].analytic.totalJj);
    }
}

TEST(HardwarePlanDeterminism, MixedPlanStableAcrossThreadsAndArms)
{
    const RandomizedMlp mlp = testMlp();
    const std::vector<Tensor> batch = testBatch(4);
    const std::vector<std::uint64_t> seeds = testSeeds(4);

    // Reference: sequential, default arm.
    HardwarePlan ref_plan = mixedPlan();
    ref_plan.threads = 1;
    HardwareEvaluator ref(aqfp::AttenuationModel(), ref_plan);
    ref.mapMlp(mlp);
    const auto ref_scores = ref.classScoresSeeded(batch, seeds);
    const std::string ref_counts = aqfp::toJson(ref.totalLedgerCounts());

    for (const std::size_t threads : {1u, 4u, 8u}) {
        HardwarePlan plan = mixedPlan();
        plan.threads = threads;
        HardwareEvaluator eval(aqfp::AttenuationModel(), plan);
        eval.mapMlp(mlp);
        EXPECT_EQ(eval.classScoresSeeded(batch, seeds), ref_scores)
            << "threads=" << threads;
        EXPECT_EQ(aqfp::toJson(eval.totalLedgerCounts()), ref_counts)
            << "threads=" << threads;
    }

    superbnn::test::ArmRestore restore;
    for (const simd::Arm arm : simd::availableArms()) {
        ASSERT_TRUE(simd::setActiveArm(arm));
        HardwareEvaluator eval(aqfp::AttenuationModel(), mixedPlan());
        eval.mapMlp(mlp);
        EXPECT_EQ(eval.classScoresSeeded(batch, seeds), ref_scores)
            << "arm=" << simd::armName(arm);
    }
}

TEST(HardwarePlanLedger, PerLayerDrawCountsScaleWithCsAndL)
{
    const RandomizedMlp mlp = testMlp(); // 48 -> 32 -> 24 -> 10
    const HardwarePlan plan = mixedPlan();
    HardwareEvaluator eval(aqfp::AttenuationModel(), plan);
    eval.mapMlp(mlp);

    const std::size_t samples = 5;
    (void)eval.classScoresSeeded(testBatch(samples), testSeeds(samples));

    const std::size_t fan_in[] = {48, 32, 24};
    const std::size_t fan_out[] = {32, 24, 10};
    const auto reports = eval.energyReports();
    ASSERT_EQ(reports.size(), 3u);
    for (std::size_t l = 0; l < 3; ++l) {
        const std::size_t cs = plan.layers[l].crossbarSize;
        const std::size_t window = plan.layers[l].window;
        const std::size_t row_tiles = (fan_in[l] + cs - 1) / cs;
        const std::size_t col_tiles = (fan_out[l] + cs - 1) / cs;
        const aqfp::LedgerCounts &c = reports[l].counts;
        EXPECT_EQ(c.samples, samples) << "layer " << l;
        EXPECT_EQ(c.tileObservations, samples * row_tiles * col_tiles)
            << "layer " << l;
        // The headline per-layer accounting: Cs_l * L_l raw draws per
        // tile observation, L_l cycles per observation, and L_l
        // serialized steps per (sample, column group).
        EXPECT_EQ(c.bernoulliDraws, c.tileObservations * cs * window)
            << "layer " << l;
        EXPECT_EQ(c.crossbarCycles, c.tileObservations * window)
            << "layer " << l;
        EXPECT_EQ(c.columnGroupSteps, samples * col_tiles * window)
            << "layer " << l;
    }
}

TEST(HardwarePlanCache, PlansDifferingInOneLayerShareTheRest)
{
    const RandomizedMlp mlp = testMlp();
    const auto cache = std::make_shared<crossbar::ProgrammedModelCache>(
        aqfp::AttenuationModel());

    const HardwarePlan plan_a(std::vector<LayerHardwareConfig>{
        {8, 4, 1.6}, {16, 8, 2.4}, {16, 8, 2.4}});
    HardwareEvaluator eval_a(aqfp::AttenuationModel(), plan_a);
    eval_a.mapMlp(mlp, cache.get(), "shared-tag");
    const auto after_a = cache->namedStats();
    EXPECT_EQ(after_a.misses, 3u); // one build per mapped cell
    EXPECT_EQ(after_a.hits, 0u);

    // Differs from plan_a ONLY in layer 0 (window changes are free —
    // the mapped model is window-independent — so change Cs).
    const HardwarePlan plan_b(std::vector<LayerHardwareConfig>{
        {36, 16, 1.6}, {16, 8, 2.4}, {16, 8, 2.4}});
    HardwareEvaluator eval_b(aqfp::AttenuationModel(), plan_b);
    eval_b.mapMlp(mlp, cache.get(), "shared-tag");
    const auto after_b = cache->namedStats();
    EXPECT_EQ(after_b.misses, 4u) << "only layer 0 rebuilds";
    EXPECT_EQ(after_b.hits, 2u) << "layers 1 and head shared";

    // Combined stats() stays the sum of both sections.
    EXPECT_EQ(cache->stats().hits,
              cache->geometryStats().hits + cache->namedStats().hits);
    EXPECT_EQ(cache->stats().misses,
              cache->geometryStats().misses
                  + cache->namedStats().misses);

    // A warm-cache map is bit-identical to a cold direct map.
    HardwareEvaluator direct(aqfp::AttenuationModel(), plan_b);
    direct.mapMlp(mlp);
    const std::vector<Tensor> batch = testBatch(3);
    const std::vector<std::uint64_t> seeds = testSeeds(3);
    EXPECT_EQ(direct.classScoresSeeded(batch, seeds),
              eval_b.classScoresSeeded(batch, seeds));
}

TEST(HardwarePlanSweep, UniformPlanSweepMatchesLegacyConfigSweep)
{
    // A scaled-down sweep through both constructors must produce
    // byte-identical surfaces (the uniform-adapter contract at the
    // ScenarioSweep layer).
    const RandomizedMlp mlp = testMlp();
    data::Dataset tiny;
    tiny.samples = Tensor({6, 48});
    Rng data_rng(41);
    for (std::size_t i = 0; i < tiny.samples.size(); ++i)
        tiny.samples[i] = data_rng.bernoulli(0.5) ? 1.0f : -1.0f;
    tiny.labels.assign(6, 0);

    const HardwareConfig base{16, 8, 2.4, false, 0.25, 1, 8};
    ScenarioGrid grid;
    grid.stuckFractions = {0.0, 0.2};
    SweepOptions opts;
    opts.chipsPerCorner = 3;
    opts.evalSamples = 6;
    opts.threads = 1;

    const ScenarioSweep legacy(mlp, tiny, base);
    const ScenarioSweep plan(mlp, tiny, HardwarePlan(base));
    EXPECT_EQ(toJson(legacy.run(grid, opts)),
              toJson(plan.run(grid, opts)));
}

TEST(HardwarePlanExplorer, DescentNeverWorseThanSeedAndBeatsItOnMnist)
{
    // The autotune bench's MNIST space: the acceptance contract is a
    // per-layer plan whose ledger-measured energy strictly beats the
    // best homogeneous candidate on a Table 3 workload.
    CoOptSpace space;
    space.crossbarSizes = {8, 16, 18, 36};
    space.bitstreamLengths = {4, 16};
    space.grayZones = {1.6, 2.4, 3.2};

    const DesignSpaceExplorer explorer((aqfp::AttenuationModel()));
    const aqfp::WorkloadSpec workload = aqfp::workloads::mnistMlp();
    const HeterogeneousExploreResult result =
        explorer.exploreHeterogeneous(workload, space, ExploreOptions{},
                                      costs::measuredEnergy());

    // Structural guarantee: the descent starts at the seed and accepts
    // strict improvements only.
    EXPECT_LE(result.planCost, result.seedCost);
    EXPECT_EQ(result.plan.layers.size(), workload.layers.size());
    EXPECT_GE(result.sweeps, 1u);
    EXPECT_GE(result.evaluatedPlans, 1u);
    EXPECT_GT(result.crossProduct,
              static_cast<double>(result.evaluatedPlans))
        << "descent must prune the cross-product";

    // The acceptance delta: strictly cheaper measured energy than the
    // homogeneous optimum on this workload/space.
    ASSERT_TRUE(result.seed.measured.has_value());
    EXPECT_LT(result.plan.measured.totalEnergyAj,
              result.seed.measured->totalEnergyAj);

    // The winning plan is executable as a core::HardwarePlan.
    const HardwarePlan plan = result.plan.toHardwarePlan();
    EXPECT_EQ(plan.layers.size(), workload.layers.size());
    EXPECT_NO_THROW(plan.validate());
}

TEST(HardwarePlanExplorer, SinglePointSpaceReturnsTheSeedPlan)
{
    CoOptSpace space;
    space.crossbarSizes = {16};
    space.bitstreamLengths = {8};
    space.grayZones = {2.4};

    const DesignSpaceExplorer explorer((aqfp::AttenuationModel()));
    const HeterogeneousExploreResult result =
        explorer.exploreHeterogeneous(aqfp::workloads::mnistMlp(), space,
                                      ExploreOptions{},
                                      costs::measuredEnergy());
    EXPECT_EQ(result.planCost, result.seedCost);
    EXPECT_EQ(result.evaluatedPlans, 1u);
    for (const aqfp::AcceleratorConfig &point : result.plan.layers) {
        EXPECT_EQ(point.crossbarSize, 16u);
        EXPECT_EQ(point.bitstreamLength, 8u);
    }
    // The uniform plan's measured report matches the homogeneous
    // candidate's bit-exactly (the combine-fold identity).
    ASSERT_TRUE(result.seed.measured.has_value());
    EXPECT_EQ(result.plan.measured.totalEnergyAj,
              result.seed.measured->totalEnergyAj);
}
