/**
 * @file
 * Tests for the stochastic computing library: bitstream encodings, the
 * AQFP stochastic-number source, parallel counters and the SC-based
 * accumulation module.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "sc/accumulation.h"
#include "sc/apc.h"
#include "sc/bitstream.h"
#include "sc/sng.h"

using namespace superbnn;
using namespace superbnn::sc;

TEST(Bitstream, PopcountAndDecode)
{
    // Paper Section 2.3 example: 0100110100 has four ones -> 0.4
    // unipolar; bipolar decode of 7 ones in 10 -> 0.4.
    Bitstream s({0, 1, 0, 0, 1, 1, 0, 1, 0, 0});
    EXPECT_EQ(s.popcount(), 4u);
    EXPECT_NEAR(s.decode(Encoding::Unipolar), 0.4, 1e-12);

    Bitstream b({1, 0, 1, 1, 0, 1, 1, 1, 0, 1});
    EXPECT_EQ(b.popcount(), 7u);
    EXPECT_NEAR(b.decode(Encoding::Bipolar), 0.4, 1e-12);
}

TEST(Bitstream, BipolarNegativeExample)
{
    // -0.6 as P(1) = 2/10 (paper example).
    Bitstream s({0, 1, 0, 0, 1, 0, 0, 0, 0, 0});
    EXPECT_NEAR(s.decode(Encoding::Bipolar), -0.6, 1e-12);
}

TEST(Bitstream, OnesProbabilityFormats)
{
    EXPECT_DOUBLE_EQ(onesProbability(0.4, Encoding::Unipolar), 0.4);
    EXPECT_DOUBLE_EQ(onesProbability(0.4, Encoding::Bipolar), 0.7);
    EXPECT_DOUBLE_EQ(onesProbability(-0.6, Encoding::Bipolar), 0.2);
    EXPECT_DOUBLE_EQ(onesProbability(2.0, Encoding::Unipolar), 1.0);
    EXPECT_DOUBLE_EQ(onesProbability(-2.0, Encoding::Bipolar), 0.0);
}

TEST(Bitstream, EncodeStatistics)
{
    Rng rng(1);
    const Bitstream s = encode(0.3, 50000, Encoding::Bipolar, rng);
    EXPECT_NEAR(s.decode(Encoding::Bipolar), 0.3, 0.02);
}

TEST(Bitstream, XnorIsBipolarMultiplication)
{
    Rng rng(2);
    const double xa = 0.5, xb = -0.4;
    const std::size_t len = 100000;
    const Bitstream a = encode(xa, len, Encoding::Bipolar, rng);
    const Bitstream b = encode(xb, len, Encoding::Bipolar, rng);
    const Bitstream prod = a.xnorWith(b);
    EXPECT_NEAR(prod.decode(Encoding::Bipolar), xa * xb, 0.02);
}

TEST(Bitstream, AndIsUnipolarMultiplication)
{
    Rng rng(3);
    const double xa = 0.7, xb = 0.5;
    const std::size_t len = 100000;
    const Bitstream a = encode(xa, len, Encoding::Unipolar, rng);
    const Bitstream b = encode(xb, len, Encoding::Unipolar, rng);
    EXPECT_NEAR(a.andWith(b).decode(Encoding::Unipolar), xa * xb, 0.02);
}

TEST(Bitstream, ToStringRoundTrip)
{
    Bitstream s({1, 0, 1});
    EXPECT_EQ(s.toString(), "101");
}

TEST(Sng, ObservationWindowEncodesProbability)
{
    // Fig. 6a: holding the input steady for L cycles yields an SN whose
    // density is the buffer's switching probability.
    aqfp::GrayZoneModel model(2.4, 0.0);
    AqfpStochasticSource src(model, 20000);
    Rng rng(4);
    for (double iin : {-1.0, 0.0, 0.5, 1.5}) {
        const Bitstream s = src.observe(iin, rng);
        EXPECT_NEAR(s.decode(Encoding::Unipolar), model.probOne(iin),
                    0.02)
            << "Iin=" << iin;
        EXPECT_NEAR(src.expectedValue(iin),
                    2.0 * model.probOne(iin) - 1.0, 1e-12);
    }
}

TEST(Sng, WindowLengthRespected)
{
    AqfpStochasticSource src(aqfp::GrayZoneModel(2.4, 0.0), 17);
    Rng rng(5);
    EXPECT_EQ(src.observe(0.0, rng).length(), 17u);
}

// --- parallel counters ---

TEST(Apc, ExactCounterCountsOnes)
{
    ParallelCounter pc(6);
    EXPECT_EQ(pc.count({1, 0, 1, 1, 0, 1}), 4u);
    EXPECT_EQ(pc.count({0, 0, 0, 0, 0, 0}), 0u);
    EXPECT_EQ(pc.count({1, 1, 1, 1, 1, 1}), 6u);
}

TEST(Apc, ApproxNeverOvercounts)
{
    Rng rng(6);
    ApproxParallelCounter apc(12, 0.5);
    ParallelCounter exact(12);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<std::uint8_t> bits(12);
        for (auto &b : bits)
            b = rng.bernoulli(0.5) ? 1 : 0;
        const std::size_t approx = apc.count(bits);
        const std::size_t truth = exact.count(bits);
        EXPECT_LE(approx, truth);
        EXPECT_GE(approx + apc.maxUndercount(), truth);
    }
}

TEST(Apc, ZeroDropIsExact)
{
    Rng rng(7);
    ApproxParallelCounter apc(9, 0.0);
    ParallelCounter exact(9);
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<std::uint8_t> bits(9);
        for (auto &b : bits)
            b = rng.bernoulli(0.3) ? 1 : 0;
        EXPECT_EQ(apc.count(bits), exact.count(bits));
    }
}

TEST(Apc, ApproxSavesGates)
{
    const aqfp::CellLibrary lib;
    ApproxParallelCounter apc(16, 0.5);
    ParallelCounter exact(16);
    EXPECT_LT(apc.netlist().totalJj(lib), exact.netlist().totalJj(lib));
}

TEST(Apc, SingleInputDegenerate)
{
    ParallelCounter pc(1);
    EXPECT_EQ(pc.count({1}), 1u);
    ApproxParallelCounter apc(1);
    EXPECT_EQ(apc.count({0}), 0u);
    EXPECT_EQ(apc.maxUndercount(), 0u);
}

class ApcWidthSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(ApcWidthSweep, MeanUndercountIsSmall)
{
    // Each dropped pair undercounts by one exactly when it is (1,1),
    // so for p = 0.5 inputs the expected error is droppedPairs / 4.
    const std::size_t t = GetParam();
    Rng rng(8);
    ApproxParallelCounter apc(t, 0.5);
    ParallelCounter exact(t);
    double err = 0.0;
    const int trials = 3000;
    for (int i = 0; i < trials; ++i) {
        std::vector<std::uint8_t> bits(t);
        for (auto &b : bits)
            b = rng.bernoulli(0.5) ? 1 : 0;
        err += static_cast<double>(exact.count(bits))
            - apc.count(bits);
    }
    err /= trials;
    const double expected =
        static_cast<double>(apc.droppedPairs()) / 4.0;
    EXPECT_NEAR(err, expected, 0.2 + expected * 0.15);
}

INSTANTIATE_TEST_SUITE_P(Widths, ApcWidthSweep,
                         ::testing::Values(4, 8, 16, 32));

// --- accumulation module ---

TEST(Accumulation, PositiveSumGivesPlusOne)
{
    AccumulationModule mod(3, 8, true);
    std::vector<Bitstream> streams(3, Bitstream(8));
    for (auto &s : streams)
        for (std::size_t i = 0; i < 8; ++i)
            s.setBit(i, true);
    EXPECT_EQ(mod.accumulate(streams), 1);
    EXPECT_EQ(mod.rawCount(streams), 24u);
    EXPECT_NEAR(mod.decodedSum(streams), 3.0, 1e-12);
}

TEST(Accumulation, NegativeSumGivesMinusOne)
{
    AccumulationModule mod(2, 4, true);
    std::vector<Bitstream> streams(2, Bitstream(4)); // all zeros
    EXPECT_EQ(mod.accumulate(streams), -1);
    EXPECT_NEAR(mod.decodedSum(streams), -2.0, 1e-12);
}

TEST(Accumulation, ReferenceOffsetBiasesDecision)
{
    AccumulationModule mod(1, 4, true);
    Bitstream s(4);
    s.setBit(0, true);
    s.setBit(1, true);
    s.setBit(2, true); // 3 of 4 ones: count 3, ref 2 -> +1
    EXPECT_EQ(mod.accumulate({s}), 1);
    // Raising the reference flips the decision.
    EXPECT_EQ(mod.accumulate({s}, 2.0), -1);
}

TEST(Accumulation, StatisticalSignRecovery)
{
    // Three crossbars with latent bipolar values 0.6, -0.2, 0.1 sum to
    // +0.5: the module should output +1 with high probability for a
    // moderately long window.
    Rng rng(9);
    const std::vector<double> values = {0.6, -0.2, 0.1};
    AccumulationModule mod(3, 32, true);
    int plus = 0;
    const int trials = 400;
    for (int t = 0; t < trials; ++t) {
        std::vector<Bitstream> streams;
        for (double v : values)
            streams.push_back(encode(v, 32, Encoding::Bipolar, rng));
        plus += mod.accumulate(streams) == 1 ? 1 : 0;
    }
    EXPECT_GT(static_cast<double>(plus) / trials, 0.9);
}

TEST(Accumulation, LongerWindowReducesErrors)
{
    // With a small latent margin, a long observation window must make
    // the decision more reliable than short windows (the Fig. 10
    // mechanism). Individual short windows are not strictly ordered
    // because of tie-breaking at the reference.
    Rng rng(10);
    const std::vector<double> values = {0.3, -0.1};
    std::vector<double> errs;
    for (std::size_t window : {2u, 8u, 64u}) {
        AccumulationModule mod(2, window, true);
        int errors = 0;
        const int trials = 2000;
        for (int t = 0; t < trials; ++t) {
            std::vector<Bitstream> streams;
            for (double v : values)
                streams.push_back(
                    encode(v, window, Encoding::Bipolar, rng));
            if (mod.accumulate(streams) != 1)
                ++errors;
        }
        errs.push_back(static_cast<double>(errors) / trials);
    }
    EXPECT_LT(errs.back(), 0.25);
    EXPECT_LE(errs.back(), errs[0] + 0.05);
    EXPECT_LE(errs.back(), errs[1] + 0.05);
}

TEST(Accumulation, ApproxApcBiasesTowardMinusOne)
{
    // The approximate APC undercounts ones, so near-zero sums lean -1;
    // decisions with wide margins are unaffected.
    AccumulationModule approx(4, 8, false, 1.0);
    std::vector<Bitstream> all_ones(4, Bitstream(8));
    for (auto &s : all_ones)
        for (std::size_t i = 0; i < 8; ++i)
            s.setBit(i, true);
    EXPECT_EQ(approx.accumulate(all_ones), 1); // (1,1) pairs still OR to 1
}

TEST(Accumulation, NetlistSmallerThanExact)
{
    const aqfp::CellLibrary lib;
    AccumulationModule approx(16, 16, false, 0.5);
    AccumulationModule exact(16, 16, true);
    EXPECT_LT(approx.netlist().totalJj(lib),
              exact.netlist().totalJj(lib));
}
